//! End-to-end tests of the `fg` binary.

use std::io::Write;
use std::process::{Command, Stdio};

const FIG5: &str = "
    concept Semigroup<t> { binary_op : fn(t, t) -> t; } in
    concept Monoid<t> { refines Semigroup<t>; identity_elt : t; } in
    let accumulate = biglam t where Monoid<t>.
        fix accum: fn(list t) -> t.
          lam ls: list t.
            if null[t](ls) then Monoid<t>.identity_elt
            else Monoid<t>.binary_op(car[t](ls), accum(cdr[t](ls)))
    in
    model Semigroup<int> { binary_op = iadd; } in
    model Monoid<int> { identity_elt = 0; } in
    accumulate[int](cons[int](1, cons[int](2, nil[int])))
";

fn run_fg(args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_fg"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn fg");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(stdin.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn run_subcommand_evaluates() {
    let (stdout, stderr, ok) = run_fg(&["run", "-"], FIG5);
    assert!(ok, "stderr: {stderr}");
    assert_eq!(stdout.trim(), "3");
}

#[test]
fn direct_subcommand_evaluates() {
    let (stdout, _, ok) = run_fg(&["direct", "-"], FIG5);
    assert!(ok);
    assert_eq!(stdout.trim(), "3");
}

#[test]
fn check_subcommand_prints_the_type() {
    let (stdout, _, ok) = run_fg(&["check", "-"], FIG5);
    assert!(ok);
    assert_eq!(stdout.trim(), "int");
    let (stdout, _, ok) = run_fg(
        &["check", "-"],
        "biglam t. lam x: t, y: int. x",
    );
    assert!(ok);
    assert_eq!(stdout.trim(), "forall t. fn(t, int) -> t");
}

#[test]
fn translate_subcommand_prints_system_f() {
    let (stdout, _, ok) = run_fg(&["translate", "-"], FIG5);
    assert!(ok);
    assert!(stdout.contains("biglam t. lam Monoid_"), "{stdout}");
    // The output must itself be valid System F of the right type.
    let term = system_f::parse_term(&stdout).expect("translation parses");
    assert_eq!(system_f::typecheck(&term), Ok(system_f::Ty::Int));
    assert_eq!(system_f::eval(&term).unwrap(), system_f::Value::Int(3));
}

#[test]
fn vm_subcommand_evaluates() {
    let (stdout, stderr, ok) = run_fg(&["vm", "-"], FIG5);
    assert!(ok, "stderr: {stderr}");
    assert_eq!(stdout.trim(), "3");
}

#[test]
fn repl_smoke() {
    let (stdout, _, ok) = run_fg(
        &["repl"],
        "let x = 40
iadd(x, 2)
:type x
:quit
",
    );
    assert!(ok);
    assert!(stdout.contains("defined (let)"), "{stdout}");
    assert!(stdout.contains("42 : int"), "{stdout}");
    assert!(stdout.contains("int"), "{stdout}");
}

#[test]
fn fmt_subcommand_reformats() {
    let (stdout, _, ok) = run_fg(&["fmt", "-"], FIG5);
    assert!(ok);
    assert!(stdout.contains("concept Semigroup<t> {\n"), "{stdout}");
    // The formatted output still runs.
    let (out2, _, ok2) = run_fg(&["run", "-"], &stdout);
    assert!(ok2);
    assert_eq!(out2.trim(), "3");
}

#[test]
fn bytecode_subcommand_disassembles() {
    let (stdout, _, ok) = run_fg(&["bytecode", "-"], FIG5);
    assert!(ok);
    assert!(stdout.contains("fn f0"), "{stdout}");
    assert!(stdout.contains("closure"), "{stdout}");
}

#[test]
fn prelude_flag_provides_the_stdlib() {
    let (stdout, stderr, ok) = run_fg(
        &["--prelude", "run", "-"],
        "accumulate[int](range(1, 101))",
    );
    assert!(ok, "stderr: {stderr}");
    assert_eq!(stdout.trim(), "5050");
}

#[test]
fn type_errors_are_reported_with_position() {
    let (_, stderr, ok) = run_fg(
        &["check", "-"],
        "concept A<t> { op : t; } in\nA<int>.op",
    );
    assert!(!ok);
    assert!(
        stderr.contains("no model for `A<int>`"),
        "unhelpful error: {stderr}"
    );
    // Line:column rendering from CheckError::render.
    assert!(stderr.contains("2:"), "missing position: {stderr}");
}

#[test]
fn parse_errors_fail_cleanly() {
    let (_, stderr, ok) = run_fg(&["run", "-"], "lam x int. x");
    assert!(!ok);
    assert!(stderr.contains("parse error"), "{stderr}");
}

#[test]
fn usage_on_bad_invocation() {
    let (_, stderr, ok) = run_fg(&["frobnicate", "-"], "");
    assert!(!ok);
    assert!(stderr.contains("usage:"), "{stderr}");
}

/// Every key the `fg-metrics/1` schema promises for a `vm` invocation.
/// Downstream tooling (benches, EXPERIMENTS.md scripts) parses these
/// names, so renaming or dropping one is a breaking change — update the
/// schema version in the `telemetry` crate if this test has to change.
#[test]
fn metrics_json_schema_is_stable() {
    let (stdout, stderr, ok) = run_fg(&["vm", "--metrics-json", "-", "-"], FIG5);
    assert!(ok, "stderr: {stderr}");
    // The value line comes first, then the JSON document.
    let (value, json) = stdout.split_once('\n').expect("value line + json");
    assert_eq!(value.trim(), "3");
    assert!(json.trim_start().starts_with('{'), "not a json object: {json}");
    assert!(json.trim_end().ends_with('}'), "unterminated json: {json}");
    for key in [
        "\"schema\": \"fg-metrics/1\"",
        "\"command\": \"vm\"",
        "\"source\": \"-\"",
        "\"phases_ns\"",
        "\"counters\"",
    ] {
        assert!(json.contains(key), "missing {key} in: {json}");
    }
    for phase in ["parse", "check_translate", "vm_compile", "vm_run"] {
        assert!(json.contains(&format!("\"{phase}\": ")), "missing phase {phase}: {json}");
    }
    for group in ["\"check\": {", "\"congruence\": {", "\"vm_dispatch\": {", "\"limits\": {"] {
        assert!(json.contains(group), "missing group {group}: {json}");
    }
    for counter in [
        // check group
        "model_lookups", "model_hits", "model_misses", "candidates_scanned",
        "max_scope_depth", "dicts_built", "dict_instantiations",
        // congruence group
        "eq_queries", "assertions", "resolves", "merges", "unions", "finds",
        "terms", "term_bank_peak",
        // vm_dispatch group: the instruction total, every opcode, gauges
        "instructions", "max_frame_depth", "max_stack_depth",
        // limits group: resource-budget consumption gauges
        "fuel_spent", "depth_peak", "cc_terms", "dict_nodes", "elapsed_ms",
    ] {
        assert!(json.contains(&format!("\"{counter}\": ")), "missing counter {counter}");
    }
    for opcode in system_f::vm::OPCODE_NAMES {
        assert!(json.contains(&format!("\"{opcode}\": ")), "missing opcode {opcode}");
    }
}

#[test]
fn metrics_json_writes_to_a_file() {
    let path = format!(
        "{}/metrics-{}.json",
        env!("CARGO_TARGET_TMPDIR"),
        std::process::id()
    );
    let (stdout, stderr, ok) = run_fg(&["direct", "--metrics-json", &path, "-"], FIG5);
    assert!(ok, "stderr: {stderr}");
    assert_eq!(stdout.trim(), "3");
    let json = std::fs::read_to_string(&path).expect("metrics file written");
    std::fs::remove_file(&path).ok();
    assert!(json.contains("\"schema\": \"fg-metrics/1\""), "{json}");
    assert!(json.contains("\"command\": \"direct\""), "{json}");
    // The direct lane reports its runtime counters.
    assert!(json.contains("\"direct_eval\": {"), "{json}");
    assert!(json.contains("\"eval_steps\": "), "{json}");
}

/// The `fg-trace/1` JSONL contract: a header object naming the schema,
/// command, and source, followed by one event object per line, each with
/// the `ev`/`span`/`name`/`ts_ns` keys and balanced begin/end pairs.
#[test]
fn trace_flag_writes_fg_trace_jsonl() {
    let path = format!(
        "{}/trace-{}.jsonl",
        env!("CARGO_TARGET_TMPDIR"),
        std::process::id()
    );
    let (stdout, stderr, ok) = run_fg(&["check", "--trace", &path, "-"], FIG5);
    assert!(ok, "stderr: {stderr}");
    assert_eq!(stdout.trim(), "int", "tracing must not pollute stdout");
    let jsonl = std::fs::read_to_string(&path).expect("trace file written");
    std::fs::remove_file(&path).ok();
    let mut lines = jsonl.lines();
    let header = lines.next().expect("header line");
    for key in [
        "\"schema\":\"fg-trace/1\"",
        "\"command\":\"check\"",
        "\"source\":\"-\"",
        "\"events\":",
        "\"dropped\":0",
    ] {
        assert!(header.contains(key), "missing {key} in header: {header}");
    }
    let (mut begins, mut ends, mut total) = (0, 0, 0);
    for line in lines {
        total += 1;
        assert!(
            line.starts_with("{\"ev\":\"") && line.ends_with('}'),
            "not an event object: {line}"
        );
        for key in ["\"span\":", "\"name\":", "\"ts_ns\":"] {
            assert!(line.contains(key), "missing {key} in event: {line}");
        }
        if line.starts_with("{\"ev\":\"begin\"") {
            begins += 1;
        } else if line.starts_with("{\"ev\":\"end\"") {
            ends += 1;
        }
    }
    assert!(header.contains(&format!("\"events\":{total}")), "{header}");
    assert_eq!(begins, ends, "unbalanced spans in:\n{jsonl}");
    // The check lane traced actual resolution work, not just the phases.
    assert!(jsonl.contains("\"name\":\"model_resolve\""), "{jsonl}");
    assert!(jsonl.contains("\"name\":\"model_selected\""), "{jsonl}");
}

#[test]
fn trace_chrome_flag_writes_trace_event_json() {
    let (stdout, stderr, ok) = run_fg(&["run", "--trace-chrome", "-", "-"], FIG5);
    assert!(ok, "stderr: {stderr}");
    // The value line comes first, then the Chrome trace JSON document.
    let (value, json) = stdout.split_once('\n').expect("value line + json");
    assert_eq!(value.trim(), "3");
    assert!(json.trim_start().starts_with('{'), "not a json object: {json}");
    assert!(json.contains("\"displayTimeUnit\":\"ns\""), "{json}");
    assert!(json.contains("\"traceEvents\":["), "{json}");
    for needle in ["\"ph\":\"B\"", "\"ph\":\"E\"", "\"name\":\"parse\""] {
        assert!(json.contains(needle), "missing {needle} in: {json}");
    }
}

/// The headline acceptance scenario: on the Fig. 6 overlapping-models
/// program, `fg explain` must name, for each of the two call sites, the
/// distinct lexically scoped model that was selected.
#[test]
fn explain_subcommand_names_both_scoped_models_on_fig6() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/fig6_overlapping.fg"
    );
    let (stdout, stderr, ok) = run_fg(&["explain", path], "");
    assert!(ok, "stderr: {stderr}");
    for needle in [
        // First arm: the call at 16:3 selects the model declared at 15:3.
        "instantiation <int> at 16:3",
        "selected #1: model Monoid<int> declared at 15:3",
        // Second arm: the call at 21:3 selects the model declared at 20:3.
        "instantiation <int> at 21:3",
        "selected #1: model Monoid<int> declared at 20:3",
    ] {
        assert!(stdout.contains(needle), "missing {needle:?} in:\n{stdout}");
    }
    // The decision trees show the resolution sites and scope depths.
    assert!(
        stdout.contains("resolve Monoid<int> (site instantiate, 2 models in scope) -> hit"),
        "{stdout}"
    );
}

#[test]
fn profile_flag_prints_a_table_to_stderr() {
    let (stdout, stderr, ok) = run_fg(&["check", "--profile", "-"], FIG5);
    assert!(ok, "stderr: {stderr}");
    assert_eq!(stdout.trim(), "int", "profiling must not pollute stdout");
    for needle in ["parse", "check_translate", "model_lookups", "dicts_built", "finds"] {
        assert!(stderr.contains(needle), "missing {needle} in table:\n{stderr}");
    }
}

/// Like [`run_fg`] but reports the raw exit code, for the crash-vs-
/// diagnostic contract (0 ok, 1 diagnostic, 2 usage, 3 caught crash).
fn run_fg_code(args: &[&str], stdin: &str) -> (String, String, i32) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_fg"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn fg");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(stdin.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

/// Budget exhaustion is a *diagnostic* (exit 1), lands in the `limits`
/// metrics group, and emits the `budget_exhausted` trace instant in the
/// fg-trace/1 vocabulary.
#[test]
fn budget_exhaustion_emits_trace_instant_and_limits_counters() {
    let trace = format!(
        "{}/trace-exhaust-{}.jsonl",
        env!("CARGO_TARGET_TMPDIR"),
        std::process::id()
    );
    let metrics = format!(
        "{}/metrics-exhaust-{}.json",
        env!("CARGO_TARGET_TMPDIR"),
        std::process::id()
    );
    let (_, stderr, code) = run_fg_code(
        &["check", "--fuel", "5", "--trace", &trace, "--metrics-json", &metrics, "-"],
        FIG5,
    );
    assert_eq!(code, 1, "exhaustion must be a diagnostic exit: {stderr}");
    assert!(
        stderr.contains("fuel budget of 5 exhausted"),
        "unstructured exhaustion report: {stderr}"
    );

    let jsonl = std::fs::read_to_string(&trace).expect("trace file written on the error path");
    std::fs::remove_file(&trace).ok();
    let instant = jsonl
        .lines()
        .find(|l| l.contains("\"name\":\"budget_exhausted\""))
        .unwrap_or_else(|| panic!("no budget_exhausted instant in:\n{jsonl}"));
    assert!(instant.contains("\"ev\":\"instant\""), "{instant}");
    assert!(instant.contains("\"resource\":\"fuel\""), "{instant}");
    assert!(instant.contains("\"limit\":5"), "{instant}");

    let json = std::fs::read_to_string(&metrics).expect("metrics written on the error path");
    std::fs::remove_file(&metrics).ok();
    assert!(json.contains("\"limits\": {"), "{json}");
    assert!(json.contains("\"exhausted\": 1"), "{json}");
    assert!(json.contains("\"fuel_spent\": "), "{json}");
}

/// An injected panic is *caught*: reported as an internal error with
/// exit 3, distinct from a diagnostic's exit 1.
#[test]
fn injected_panic_is_caught_with_a_crash_exit_code() {
    let (_, stderr, code) = run_fg_code(&["check", "--inject-fault", "check.expr:panic", "-"], FIG5);
    assert_eq!(code, 3, "caught crash must exit 3: {stderr}");
    assert!(
        stderr.contains("internal error") && stderr.contains("injected fault panic"),
        "crash not reported: {stderr}"
    );
}

/// Batch mode keeps serving after a crashing file and reports the worst
/// exit code across the batch.
#[test]
fn batch_mode_survives_a_crashing_file() {
    let good = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/fig5_accumulate.fg");
    let (stdout, stderr, code) = run_fg_code(
        &["check", "--inject-fault", "check.expr@1:panic", good, good],
        "",
    );
    // The first file crashes on the injected fault; the plan is exhausted
    // (one arm), so the second file completes and prints its type.
    assert_eq!(code, 3, "worst code wins: {stderr}");
    assert!(stdout.contains("int"), "second file must still run: {stdout}\n{stderr}");
}

/// Every committed adversarial example dies as a structured diagnostic
/// (exit 1) under the default caps — never a crash, never a hang.
#[test]
fn adversarial_corpus_exits_with_diagnostics() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/adversarial");
    let mut seen = 0;
    for entry in std::fs::read_dir(dir).expect("adversarial corpus present") {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "fg") {
            continue;
        }
        seen += 1;
        let p = path.to_str().unwrap();
        let (_, stderr, code) = run_fg_code(&["run", p], "");
        assert_eq!(code, 1, "{p}: want a diagnostic exit, got {code}: {stderr}");
        assert!(!stderr.trim().is_empty(), "{p}: diagnostic must be reported");
    }
    assert!(seen >= 4, "expected at least 4 adversarial examples, saw {seen}");
}
