//! End-to-end tests of the `--jobs` pooled batch driver and the
//! `fg serve` / `fg rpc` daemon pair (DESIGN.md §12).

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};

/// Figure 5, the everything-works corpus entry: checks to `int`.
const GOOD: &str = "
    concept Semigroup<t> { binary_op : fn(t, t) -> t; } in
    model Semigroup<int> { binary_op = iadd; } in
    Semigroup<int>.binary_op(1, 2)
";

/// A program with a type error: a diagnostic (exit 1), not a crash.
const BAD: &str = "
    concept C<t> { op : t; } in
    (biglam u where C<u>. 0)[int]
";

fn run_fg(args: &[&str], stdin: &str) -> (String, String, i32) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_fg"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn fg");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(stdin.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

/// Writes `source` under a unique name in the cargo-managed temp dir
/// and returns the path.
fn temp_file(name: &str, source: &str) -> String {
    let path = format!("{}/{name}", env!("CARGO_TARGET_TMPDIR"));
    std::fs::write(&path, source).expect("write temp source");
    path
}

// ---------------------------------------------------------------------
// --jobs batches
// ---------------------------------------------------------------------

/// Worst-code-wins over a mixed good/diagnostic batch, with every
/// file's output present and in input order.
#[test]
fn jobs_batch_mixed_corpus_exit_code_contract() {
    let good = temp_file("batch_good.fg", GOOD);
    let bad = temp_file("batch_bad.fg", BAD);
    let (stdout, stderr, code) = run_fg(
        &["--jobs", "2", "check", &good, &bad, &good],
        "",
    );
    assert_eq!(code, 1, "diagnostic beats success: {stderr}");
    assert_eq!(
        stdout.lines().filter(|l| l.trim() == "int").count(),
        2,
        "both good files must print their type: {stdout}"
    );
    assert!(
        stderr.contains("no model for `C<int>`"),
        "the bad file's diagnostic must be reported: {stderr}"
    );
}

/// A usage-level outcome stays intact under --jobs: unreadable files
/// are diagnostics, deterministic and per-file.
#[test]
fn jobs_batch_reports_unreadable_files() {
    let good = temp_file("batch_readable.fg", GOOD);
    let (stdout, stderr, code) = run_fg(
        &["--jobs", "2", "check", "/nonexistent/missing.fg", &good],
        "",
    );
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("cannot read /nonexistent/missing.fg"), "{stderr}");
    assert!(stdout.contains("int"), "the readable file still runs: {stdout}");
}

/// One worker's injected panic is isolated: the batch finishes, the
/// other files print their results, and the worst code is 3.
#[test]
fn jobs_batch_isolates_an_injected_crash() {
    let good = temp_file("batch_crashy_sibling.fg", GOOD);
    let (stdout, stderr, code) = run_fg(
        &[
            "--jobs",
            "2",
            "--inject-fault",
            "check.expr@1:panic",
            "check",
            &good,
            &good,
            &good,
        ],
        "",
    );
    // The fault plan arms one panic at the first check.expr visit;
    // under parallel dispatch *which* file trips it is scheduling-
    // dependent, but exactly one does and the rest must complete.
    assert_eq!(code, 3, "caught crash is the worst code: {stderr}");
    assert_eq!(
        stdout.lines().filter(|l| l.trim() == "int").count(),
        2,
        "the two unfaulted files still complete: {stdout}\n{stderr}"
    );
    assert!(stderr.contains("pipeline crashed"), "{stderr}");
}

/// Batch output is byte-identical run to run — the deterministic-
/// ordering contract, exercised with files whose types differ.
#[test]
fn jobs_batch_output_is_deterministic() {
    let a = temp_file("batch_det_a.fg", GOOD);
    let b = temp_file("batch_det_b.fg", "lam x: int. x");
    let c = temp_file("batch_det_c.fg", "true");
    let args = ["--jobs", "4", "check", &a, &b, &c, &a];
    let (first, _, code) = run_fg(&args, "");
    assert_eq!(code, 0);
    assert_eq!(
        first.lines().collect::<Vec<_>>(),
        vec!["int", "fn(int) -> int", "bool", "int"],
        "results print in input order: {first}"
    );
    for _ in 0..3 {
        let (again, _, _) = run_fg(&args, "");
        assert_eq!(again, first, "output must not depend on scheduling");
    }
}

/// The merged batch report carries the pool.* counter group, and a
/// repeated identical file is a recorded compile-cache hit.
#[test]
fn jobs_batch_metrics_merge_and_count_cache_hits() {
    let dup = temp_file("batch_dup.fg", GOOD);
    let metrics_path = format!("{}/batch_metrics.json", env!("CARGO_TARGET_TMPDIR"));
    // --jobs 1: the two identical files run sequentially on one
    // worker, so the second is deterministically a cache hit.
    let (_, stderr, code) = run_fg(
        &["--jobs", "1", "--metrics-json", &metrics_path, "check", &dup, &dup],
        "",
    );
    assert_eq!(code, 0, "{stderr}");
    let doc = std::fs::read_to_string(&metrics_path).expect("metrics written");
    let json = telemetry::json::Json::parse(&doc).expect("fg-metrics/1 parses");
    assert_eq!(
        json.get("schema").and_then(telemetry::json::Json::as_str),
        Some("fg-metrics/1")
    );
    let pool = json.get("counters").and_then(|c| c.get("pool")).expect("pool group");
    let counter = |key: &str| pool.get(key).and_then(telemetry::json::Json::as_i64);
    assert_eq!(counter("workers"), Some(1));
    assert_eq!(counter("jobs"), Some(2));
    assert_eq!(counter("cache_hits"), Some(1), "second identical file hits");
    assert_eq!(counter("cache_misses"), Some(1));
    assert_eq!(counter("panics"), Some(0));
    assert!(counter("worker0_busy_ns").unwrap_or(0) > 0, "busy time recorded");
    // The per-file check counters merged (two files' worth).
    let check = json.get("counters").and_then(|c| c.get("check")).expect("check group");
    assert!(
        check.get("model_lookups").and_then(telemetry::json::Json::as_i64) >= Some(1),
        "per-file metrics merged into the batch report"
    );
}

// ---------------------------------------------------------------------
// fg serve / fg rpc
// ---------------------------------------------------------------------

/// A serve daemon bound to an ephemeral port, killed on drop so a
/// failing test cannot leak the process.
struct ServeGuard {
    child: Child,
    addr: String,
}

impl ServeGuard {
    fn spawn() -> ServeGuard {
        let mut child = Command::new(env!("CARGO_BIN_EXE_fg"))
            .args(["serve", "--addr", "127.0.0.1:0"])
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn fg serve");
        // The daemon's one startup line announces the bound address.
        let mut line = String::new();
        BufReader::new(child.stdout.as_mut().unwrap())
            .read_line(&mut line)
            .expect("read serve banner");
        let addr = line
            .trim()
            .strip_prefix("fg: serving fg-rpc/1 on ")
            .unwrap_or_else(|| panic!("unexpected banner: {line}"))
            .to_owned();
        ServeGuard { child, addr }
    }

    /// Sends one request via the `fg rpc` client and returns its
    /// parsed response plus the client's exit code.
    fn rpc(&self, method: &str, file: Option<&str>) -> (telemetry::json::Json, i32) {
        let mut args = vec!["rpc", "--addr", self.addr.as_str(), method];
        if let Some(f) = file {
            args.push(f);
        }
        let (stdout, stderr, code) = run_fg(&args, "");
        let line = stdout.lines().next().unwrap_or_else(|| {
            panic!("no response line: stdout={stdout} stderr={stderr}")
        });
        (
            telemetry::json::Json::parse(line).expect("response is JSON"),
            code,
        )
    }

    /// Asks the daemon to shut down and asserts the clean-exit
    /// contract (exit 0).
    fn shutdown(mut self) {
        let (resp, code) = self.rpc("shutdown", None);
        assert_eq!(code, 0, "shutdown rpc maps exit 0");
        assert_eq!(resp.get("ok"), Some(&telemetry::json::Json::Bool(true)));
        let status = self.child.wait().expect("serve exits");
        assert_eq!(status.code(), Some(0), "clean shutdown exits 0");
        // Disarm the drop-kill: the child is already gone.
        std::mem::forget(self);
    }
}

impl Drop for ServeGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn as_str<'j>(v: &'j telemetry::json::Json, key: &str) -> &'j str {
    v.get(key).and_then(telemetry::json::Json::as_str).unwrap_or("")
}

/// Round trip: check over the wire, repeat for a recorded cache hit,
/// observe it in `stats`, shut down cleanly.
#[test]
fn serve_round_trip_cache_hit_and_clean_shutdown() {
    let file = temp_file("serve_good.fg", GOOD);
    let daemon = ServeGuard::spawn();

    let (resp, code) = daemon.rpc("check", Some(&file));
    assert_eq!(code, 0);
    assert_eq!(resp.get("ok"), Some(&telemetry::json::Json::Bool(true)));
    assert_eq!(resp.get("cached"), Some(&telemetry::json::Json::Bool(false)));
    assert_eq!(as_str(&resp, "output"), "int\n");

    let (resp, code) = daemon.rpc("check", Some(&file));
    assert_eq!(code, 0);
    assert_eq!(
        resp.get("cached"),
        Some(&telemetry::json::Json::Bool(true)),
        "identical request replays from the compile cache"
    );
    assert_eq!(as_str(&resp, "output"), "int\n");

    let (stats, _) = daemon.rpc("stats", None);
    let doc = telemetry::json::Json::parse(as_str(&stats, "output"))
        .expect("stats payload is fg-metrics/1");
    let pool = doc.get("counters").and_then(|c| c.get("pool")).expect("pool group");
    assert_eq!(
        pool.get("cache_hits").and_then(telemetry::json::Json::as_i64),
        Some(1),
        "the hit is a recorded pool.cache_hits metric"
    );

    daemon.shutdown();
}

/// Diagnostics travel over the wire with the exit-code contract: a
/// type error is ok=false / exit=1, and the client exits 1.
#[test]
fn serve_reports_diagnostics_with_exit_one() {
    let file = temp_file("serve_bad.fg", BAD);
    let daemon = ServeGuard::spawn();
    let (resp, code) = daemon.rpc("check", Some(&file));
    assert_eq!(code, 1, "client mirrors the diagnostic exit");
    assert_eq!(resp.get("ok"), Some(&telemetry::json::Json::Bool(false)));
    assert_eq!(resp.get("exit"), Some(&telemetry::json::Json::Int(1)));
    assert!(
        as_str(&resp, "diagnostics").contains("no model for `C<int>`"),
        "diagnostics carried in the response"
    );
    daemon.shutdown();
}

/// Editing a source invalidates its cache entry: the daemon re-checks
/// the paper's Figure 6 after an edit and serves the *new* outcome.
#[test]
fn serve_cache_invalidates_when_fig6_is_edited() {
    let fig6 = fg::corpus::FIG6_OVERLAPPING.source;
    let file = temp_file("serve_fig6.fg", fig6);
    let daemon = ServeGuard::spawn();

    let (resp, _) = daemon.rpc("run", Some(&file));
    assert_eq!(as_str(&resp, "output"), "302\n", "Figure 6 evaluates to 302");
    let (resp, _) = daemon.rpc("run", Some(&file));
    assert_eq!(resp.get("cached"), Some(&telemetry::json::Json::Bool(true)));

    // Edit the program (100 -> 1000 in the final expression): the
    // content hash moves, so the stale entry must not be served.
    let edited = fig6.replace("iadd(imult(100, sum(ls)), product(ls))",
                              "iadd(imult(1000, sum(ls)), product(ls))");
    assert_ne!(edited, fig6, "the edit must change the source");
    std::fs::write(&file, &edited).unwrap();
    let (resp, code) = daemon.rpc("run", Some(&file));
    assert_eq!(code, 0);
    assert_eq!(
        resp.get("cached"),
        Some(&telemetry::json::Json::Bool(false)),
        "edited source is a cache miss"
    );
    assert_eq!(as_str(&resp, "output"), "3002\n", "the new outcome is served");

    daemon.shutdown();
}

/// Malformed requests get a protocol error response; the daemon keeps
/// serving on the same connection.
#[test]
fn serve_rejects_malformed_requests_and_keeps_serving() {
    use std::net::TcpStream;
    let daemon = ServeGuard::spawn();
    let stream = TcpStream::connect(&daemon.addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;

    for (request, want_error) in [
        ("this is not json", true),
        (r#"{"v":"fg-rpc/9","id":1,"method":"check","source":"true"}"#, true),
        (r#"{"v":"fg-rpc/1","id":2,"method":"frobnicate"}"#, true),
        (r#"{"v":"fg-rpc/1","id":3,"method":"check"}"#, true),
        (r#"{"v":"fg-rpc/1","id":4,"method":"check","source":"true"}"#, false),
    ] {
        writeln!(writer, "{request}").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let resp = telemetry::json::Json::parse(line.trim()).expect("response is JSON");
        if want_error {
            assert_eq!(resp.get("ok"), Some(&telemetry::json::Json::Bool(false)), "{line}");
            assert!(resp.get("error").is_some(), "{line}");
        } else {
            assert_eq!(resp.get("ok"), Some(&telemetry::json::Json::Bool(true)), "{line}");
            assert_eq!(as_str(&resp, "output"), "bool\n");
        }
    }
    // Connections are accepted sequentially: close this one so the
    // shutdown client's connect can be served.
    drop(reader);
    drop(writer);
    daemon.shutdown();
}

/// `--help` exits 0 and documents every user-facing surface this PR
/// adds (the ci.sh lint stage greps README's flag table against it).
#[test]
fn help_exits_zero_and_mentions_the_new_surfaces() {
    let (stdout, _, code) = run_fg(&["--help"], "");
    assert_eq!(code, 0);
    for needle in ["--jobs", "serve", "rpc", "--prelude", "--inject-fault"] {
        assert!(stdout.contains(needle), "help must mention {needle}: {stdout}");
    }
}
