//! Rendering of `fg explain`: a human-readable account of the checker's
//! model-resolution and type-equality decisions, reconstructed from the
//! structured trace (see the `telemetry` crate's `trace` module).
//!
//! For every instantiation site the report shows the scoped model lookup
//! as a decision tree — which scope entries were considered, why the
//! losers were rejected, which model won and where it was declared — and
//! for every same-type constraint the minimal chain of declared
//! equalities that discharges it.

use telemetry::trace::{Attrs, AttrValue, SpanNode, TreeItem};

/// Renders the explain report for a trace collected while checking
/// `source`.
pub fn render(events: &[telemetry::trace::Event], source: &str) -> String {
    let tree = telemetry::trace::build_tree(events);
    let mut out = String::new();
    for item in &tree {
        render_item(item, source, 0, &mut out);
    }
    if out.is_empty() {
        out.push_str("(no model resolutions or same-type constraints traced)\n");
    }
    out
}

fn line_col(src: &str, offset: u64) -> (usize, usize) {
    let offset = offset as usize;
    let mut line = 1;
    let mut col = 1;
    for (i, c) in src.char_indices() {
        if i >= offset {
            break;
        }
        if c == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

fn attr<'a>(attrs: &'a Attrs, key: &str) -> Option<&'a AttrValue> {
    attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
}

fn str_attr(attrs: &Attrs, key: &str) -> String {
    attr(attrs, key).map(AttrValue::render).unwrap_or_default()
}

fn loc(attrs: &Attrs, key: &str, src: &str) -> String {
    match attr(attrs, key).and_then(AttrValue::as_u64) {
        Some(off) => {
            let (l, c) = line_col(src, off);
            format!("{l}:{c}")
        }
        None => "?:?".to_owned(),
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render_item(item: &TreeItem, src: &str, depth: usize, out: &mut String) {
    match item {
        TreeItem::Span(node) => render_span(node, src, depth, out),
        TreeItem::Instant { name, attrs, .. } => render_instant(name, attrs, src, depth, out),
    }
}

fn render_children(node: &SpanNode, src: &str, depth: usize, out: &mut String) {
    for item in &node.items {
        render_item(item, src, depth, out);
    }
}

fn render_span(node: &SpanNode, src: &str, depth: usize, out: &mut String) {
    match node.name {
        "instantiate" => {
            indent(out, depth);
            let args = str_attr(&node.attrs, "args");
            let at = loc(&node.attrs, "span_start", src);
            out.push_str(&format!("instantiation {args} at {at}\n"));
            render_children(node, src, depth + 1, out);
        }
        "model_resolve" => {
            indent(out, depth);
            let concept = str_attr(&node.attrs, "concept");
            let args = str_attr(&node.attrs, "args");
            let site = str_attr(&node.attrs, "site");
            let scope = str_attr(&node.attrs, "scope_depth");
            let outcome = node
                .end_attr("outcome")
                .map(AttrValue::render)
                .unwrap_or_else(|| "?".to_owned());
            out.push_str(&format!(
                "resolve {concept}{args} (site {site}, {scope} models in scope) -> {outcome}\n"
            ));
            render_children(node, src, depth + 1, out);
        }
        "dict_build" => {
            indent(out, depth);
            let concept = str_attr(&node.attrs, "concept");
            let at = loc(&node.attrs, "span_start", src);
            let kind = match attr(&node.attrs, "parameterized").and_then(AttrValue::as_u64) {
                Some(1) => "parameterized model",
                _ => "model",
            };
            out.push_str(&format!("{kind} {concept} declared at {at}\n"));
            render_children(node, src, depth + 1, out);
        }
        "where_enter" => {
            // An empty where clause explains nothing; skip the header.
            if attr(&node.attrs, "constraints").and_then(AttrValue::as_u64) == Some(0) {
                render_children(node, src, depth, out);
                return;
            }
            indent(out, depth);
            let n = attr(&node.attrs, "constraints")
                .and_then(AttrValue::as_u64)
                .unwrap_or(0);
            let plural = if n == 1 { "constraint" } else { "constraints" };
            let at = loc(&node.attrs, "span_start", src);
            out.push_str(&format!("where clause ({n} {plural}) at {at}\n"));
            render_children(node, src, depth + 1, out);
        }
        // Structural spans (parse/check/eval phases): no line of their
        // own, but their children still render.
        _ => render_children(node, src, depth, out),
    }
}

fn render_instant(name: &str, attrs: &Attrs, src: &str, depth: usize, out: &mut String) {
    match name {
        "candidate" => {
            indent(out, depth);
            let index = str_attr(attrs, "index");
            let head = str_attr(attrs, "head");
            let mut line = format!("candidate #{index}: head {head}");
            if attr(attrs, "decl_start").is_some() {
                line.push_str(&format!(" (declared at {})", loc(attrs, "decl_start", src)));
            }
            out.push_str(&line);
            out.push('\n');
        }
        "candidate_rejected" => {
            indent(out, depth);
            let index = str_attr(attrs, "index");
            let reason = str_attr(attrs, "reason");
            out.push_str(&format!("rejected #{index}: {reason}\n"));
        }
        "model_selected" => {
            indent(out, depth);
            let index = str_attr(attrs, "index");
            let concept = str_attr(attrs, "concept");
            let args = str_attr(attrs, "args");
            let mut line = format!("selected #{index}: model {concept}{args}");
            if attr(attrs, "decl_start").is_some() {
                line.push_str(&format!(" declared at {}", loc(attrs, "decl_start", src)));
            }
            let dict = str_attr(attrs, "dict");
            if !dict.is_empty() {
                let path = str_attr(attrs, "path");
                line.push_str(&format!(" (dictionary {dict}{path})"));
            }
            out.push_str(&line);
            out.push('\n');
        }
        "same_type" => {
            indent(out, depth);
            let lhs = str_attr(attrs, "lhs");
            let rhs = str_attr(attrs, "rhs");
            let holds = attr(attrs, "holds").and_then(AttrValue::as_u64) == Some(1);
            let proof = str_attr(attrs, "proof");
            if holds {
                out.push_str(&format!("same-type {lhs} = {rhs}: holds ({proof})\n"));
            } else {
                out.push_str(&format!("same-type {lhs} = {rhs}: VIOLATED\n"));
            }
        }
        "where_proxy" => {
            indent(out, depth);
            let concept = str_attr(attrs, "concept");
            let args = str_attr(attrs, "args");
            out.push_str(&format!("assume model {concept}{args} (where-clause proxy)\n"));
        }
        // Low-level congruence/assertion events stay in the raw trace;
        // the report keeps to resolution decisions and proofs.
        _ => {}
    }
}
