//! An interactive read–eval–print loop for F_G.
//!
//! F_G is expression-oriented — declarations are `concept … in e`,
//! `model … in e`, `let x = … in e` — so the REPL works by accumulating a
//! declaration *prefix*: entering a declaration (without its `in`) appends
//! it to the prefix after validation; entering an expression compiles and
//! runs `prefix + expression`.
//!
//! Commands: `:type e`, `:translate e`, `:elaborate e`, `:decls`,
//! `:reset`, `:help`, `:quit`.

use std::io::{BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use telemetry::limits::{Budget, Limits};

/// The accumulated REPL session state.
pub struct Repl {
    /// Declaration prefix, each entry a complete `… in`-terminated chunk.
    decls: Vec<String>,
    /// Per-interaction resource caps (defaults + env, overridable by
    /// CLI flags via [`Repl::set_limits`]).
    limits: Limits,
}

impl Repl {
    /// Creates a session, optionally preloaded with the stdlib prelude.
    pub fn new(with_prelude: bool) -> Repl {
        let mut decls = Vec::new();
        if with_prelude {
            decls.push(fg::stdlib::PRELUDE.to_owned());
        }
        Repl {
            decls,
            limits: Limits::DEFAULT_CAPS.with_env(),
        }
    }

    /// Overrides the per-interaction resource caps.
    pub fn set_limits(&mut self, limits: Limits) {
        self.limits = limits;
    }

    fn prefix(&self) -> String {
        self.decls.concat()
    }

    fn program(&self, body: &str) -> String {
        format!("{}\n{}\n", self.prefix(), body)
    }

    /// A fresh budget for one interaction, so one exhausted entry never
    /// poisons the session.
    fn budget(&self) -> Arc<Budget> {
        Arc::new(Budget::new(self.limits))
    }

    fn compile_with(&self, body: &str, budget: &Arc<Budget>) -> Result<fg::Compiled, String> {
        let src = self.program(body);
        let expr = fg::parser::parse_expr_budgeted(&src, budget.clone())
            .map_err(|e| format!("parse error: {e}"))?;
        fg::check::check_program_budgeted(&expr, telemetry::trace::Tracer::disabled(), budget.clone())
            .map_err(|e| e.render(&src))
    }

    fn compile(&self, body: &str) -> Result<fg::Compiled, String> {
        self.compile_with(body, &self.budget())
    }

    /// Handles one input line, returning the text to print (or `None` to
    /// quit). Panic-isolated: any crash in the pipeline (a bug in `fg`,
    /// or an injected `:panic` fault) is caught and reported as a line of
    /// output, and the session keeps serving.
    pub fn handle(&mut self, line: &str) -> Option<String> {
        // The declaration list is only pushed to after a successful
        // validation compile, so a mid-pipeline panic cannot leave it
        // half-updated.
        match catch_unwind(AssertUnwindSafe(|| self.handle_inner(line))) {
            Ok(reply) => reply,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".to_owned());
                Some(format!("internal error: {msg} (session preserved)"))
            }
        }
    }

    fn handle_inner(&mut self, line: &str) -> Option<String> {
        let line = line.trim();
        if line.is_empty() {
            return Some(String::new());
        }
        if let Some(cmd) = line.strip_prefix(':') {
            return self.command(cmd);
        }
        // Declarations: a leading keyword and no `in` continuation makes
        // this a prefix entry. `prefix + line + " in 0"` must typecheck.
        let first = line.split_whitespace().next().unwrap_or("");
        if matches!(first, "concept" | "model" | "type" | "let") {
            let candidate = format!("{line} in");
            let probe = format!("{candidate} 0");
            match self.compile(&probe) {
                Ok(_) => {
                    self.decls.push(format!("{candidate}\n"));
                    return Some(format!("defined ({first})"));
                }
                Err(first_err) => {
                    // It may have been a complete expression after all
                    // (e.g. `let x = 1 in x`); fall through and report the
                    // declaration error only if that also fails.
                    if self.compile(line).is_err() {
                        return Some(first_err);
                    }
                }
            }
        }
        let budget = self.budget();
        match self.compile_with(line, &budget) {
            Ok(compiled) => match system_f::eval_budgeted(&compiled.term, &budget) {
                Ok(v) => Some(format!("{v} : {}", compiled.ty)),
                Err(e) => Some(format!("runtime error: {e}")),
            },
            Err(e) => Some(e),
        }
    }

    fn command(&mut self, cmd: &str) -> Option<String> {
        let (name, rest) = match cmd.split_once(char::is_whitespace) {
            Some((n, r)) => (n, r.trim()),
            None => (cmd, ""),
        };
        match name {
            "q" | "quit" | "exit" => None,
            "help" => Some(
                "enter an expression to evaluate it, or a declaration\n\
                 (concept …, model …, let x = …, type t = …) to add it to the session\n\
                 :type e       show the F_G type of e\n\
                 :translate e  show the System F translation of e\n\
                 :elaborate e  show e with inferred type arguments inserted\n\
                 :decls        list session declarations\n\
                 :reset        drop all session declarations\n\
                 :quit         leave"
                    .to_owned(),
            ),
            "type" => Some(match self.compile(rest) {
                Ok(c) => format!("{}", c.ty),
                Err(e) => e,
            }),
            "translate" => Some(match self.compile(rest) {
                Ok(c) => format!("{}", c.term),
                Err(e) => e,
            }),
            "elaborate" => Some(match self.compile(rest) {
                Ok(c) => format!("{}", c.elaborated),
                Err(e) => e,
            }),
            "decls" => Some(if self.decls.is_empty() {
                "(no declarations)".to_owned()
            } else {
                self.decls
                    .iter()
                    .map(|d| d.trim().lines().next().unwrap_or("").to_owned())
                    .collect::<Vec<_>>()
                    .join("\n")
            }),
            "reset" => {
                self.decls.clear();
                Some("session cleared".to_owned())
            }
            other => Some(format!("unknown command `:{other}` (try :help)")),
        }
    }
}

/// Runs the REPL over the given reader/writer until EOF or `:quit`.
///
/// # Errors
///
/// Propagates I/O errors from the reader or writer.
pub fn run_repl(
    input: impl BufRead,
    mut output: impl Write,
    with_prelude: bool,
    limits: Limits,
) -> std::io::Result<()> {
    let mut repl = Repl::new(with_prelude);
    repl.set_limits(limits);
    writeln!(output, "F_G repl — :help for commands, :quit to leave")?;
    write!(output, "fg> ")?;
    output.flush()?;
    for line in input.lines() {
        let line = line?;
        match repl.handle(&line) {
            Some(reply) => {
                if !reply.is_empty() {
                    writeln!(output, "{reply}")?;
                }
            }
            None => break,
        }
        write!(output, "fg> ")?;
        output.flush()?;
    }
    writeln!(output)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::Repl;

    #[test]
    fn evaluates_expressions() {
        let mut r = Repl::new(false);
        assert_eq!(r.handle("iadd(40, 2)").unwrap(), "42 : int");
        assert_eq!(r.handle("true").unwrap(), "true : bool");
    }

    #[test]
    fn accumulates_declarations() {
        let mut r = Repl::new(false);
        assert_eq!(
            r.handle("concept S<t> { op : fn(t, t) -> t; }").unwrap(),
            "defined (concept)"
        );
        assert_eq!(
            r.handle("model S<int> { op = imult; }").unwrap(),
            "defined (model)"
        );
        assert_eq!(r.handle("let six = 6").unwrap(), "defined (let)");
        assert_eq!(r.handle("S<int>.op(six, 7)").unwrap(), "42 : int");
    }

    #[test]
    fn complete_let_expressions_still_evaluate() {
        let mut r = Repl::new(false);
        assert_eq!(r.handle("let x = 1 in iadd(x, 1)").unwrap(), "2 : int");
    }

    #[test]
    fn prelude_session() {
        let mut r = Repl::new(true);
        assert_eq!(
            r.handle("accumulate(range(1, 5))").unwrap(),
            "10 : int"
        );
    }

    #[test]
    fn type_and_reset_commands() {
        let mut r = Repl::new(false);
        assert_eq!(r.handle(":type lam x: int. x").unwrap(), "fn(int) -> int");
        r.handle("let y = 5").unwrap();
        assert_eq!(r.handle("y").unwrap(), "5 : int");
        assert_eq!(r.handle(":reset").unwrap(), "session cleared");
        assert!(r.handle("y").unwrap().contains("unbound variable"));
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut r = Repl::new(false);
        assert!(r.handle("ghost").unwrap().contains("unbound variable"));
        assert_eq!(r.handle("1").unwrap(), "1 : int");
        assert!(r
            .handle("model Nope<int> { }")
            .unwrap()
            .contains("unknown concept"));
    }

    #[test]
    fn quit_ends_the_session() {
        let mut r = Repl::new(false);
        assert!(r.handle(":quit").is_none());
    }

    #[test]
    fn crash_then_continue_scripted_session() {
        // A scripted (rustyline-free) session: a line that panics inside
        // the pipeline is reported and the session keeps serving, with all
        // earlier declarations intact.
        let plan = telemetry::fault::FaultPlan::parse("check.expr:panic").unwrap();
        let mut r = Repl::new(false);
        r.handle("concept S<t> { op : fn(t, t) -> t; }").unwrap();
        r.handle("model S<int> { op = iadd; }").unwrap();
        r.handle("let forty = 40").unwrap();

        let crashed = telemetry::fault::with_plan(plan, || r.handle("S<int>.op(forty, 2)"));
        let msg = crashed.unwrap();
        assert!(
            msg.contains("internal error") && msg.contains("session preserved"),
            "expected a caught-crash report, got: {msg}"
        );

        // The very next line evaluates normally against the same bindings.
        assert_eq!(r.handle("S<int>.op(forty, 2)").unwrap(), "42 : int");
    }

    #[test]
    fn budget_exhaustion_returns_to_the_prompt() {
        // A diverging expression dies on the per-interaction budget (as a
        // diagnostic, not a hang) and the session continues. The depth cap
        // backstops fuel because Ω deepens the stack as it burns.
        let mut r = Repl::new(false);
        r.set_limits(telemetry::limits::Limits {
            fuel: Some(10_000),
            max_depth: Some(64),
            ..telemetry::limits::Limits::UNLIMITED
        });
        let msg = r
            .handle("(fix f: fn(int) -> int. lam x: int. f(x))(0)")
            .unwrap();
        assert!(
            msg.contains("exhausted") || msg.contains("budget"),
            "expected an exhaustion diagnostic, got: {msg}"
        );
        assert_eq!(r.handle("iadd(40, 2)").unwrap(), "42 : int");
    }

    #[test]
    fn elaborate_command_shows_inference() {
        let mut r = Repl::new(false);
        r.handle("let id = biglam t. lam x: t. x").unwrap();
        let out = r.handle(":elaborate id(3)").unwrap();
        assert!(out.contains("id[int](3)"), "{out}");
    }
}
