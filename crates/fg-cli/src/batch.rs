//! The `--jobs N` batch driver: dispatches a file batch onto a
//! persistent [`fg::pool::WorkerPool`] and merges the per-file
//! telemetry into one report.
//!
//! Contracts (see DESIGN.md §12):
//!
//! * **Deterministic output** — results print in input order no matter
//!   which worker finished first.
//! * **Worst-code-wins** — the batch exit code is the worst per-file
//!   outcome, exactly like the sequential path.
//! * **Isolation** — a panic inside one file's pipeline is caught by
//!   the pool and reported as exit 3 for that file only.
//! * **One report** — `--profile`, `--metrics-json`, `--trace`, and
//!   `--trace-chrome` emit a single merged record with a `pool.*`
//!   counter group instead of one record per file.

use std::sync::Arc;

use telemetry::trace::{self, Tracer};
use telemetry::Metrics;

use crate::{CachedRun, Flags, RunOutput, EXIT_CRASH, EXIT_DIAGNOSTIC};

/// Compile-cache bound for one batch: enough for any realistic corpus,
/// flushed wholesale if a pathological batch exceeds it.
const CACHE_CAPACITY: usize = 1024;

/// Runs `cmd` over `paths` on a pool of `--jobs` workers. See the
/// [module docs](self) for the contracts.
pub fn run_batch(cmd: &str, paths: &[String], flags: &Flags) -> u8 {
    let trace_on = flags.wants_trace(cmd);
    // Read every source up front on the main thread: unreadable-file
    // diagnostics stay deterministic and `-` (stdin) keeps working.
    let inputs: Vec<Result<String, String>> = paths
        .iter()
        .map(|path| {
            crate::read_source(path).map_err(|e| format!("fg: cannot read {path}: {e}\n"))
        })
        .collect();
    // Per-file tracers are created together on the main thread so their
    // timestamps share one epoch and merge into one coherent timeline.
    let tracers: Vec<Tracer> = paths
        .iter()
        .map(|_| if trace_on { Tracer::enabled() } else { Tracer::disabled() })
        .collect();
    let pool = match fg::pool::WorkerPool::new(flags.jobs_resolved()) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("fg: cannot spawn worker pool: {e}");
            return EXIT_CRASH;
        }
    };
    let cache = Arc::new(fg::pool::CompileCache::<CachedRun>::new(CACHE_CAPACITY));
    // Armed fault plans count point visits globally, so replaying a
    // cached outcome would change which visit fires; tracing wants real
    // per-file event streams. Both bypass the cache.
    let use_cache = !telemetry::fault::armed() && !trace_on;
    let limits = flags.limits();
    let limits_key = format!("{limits:?}");

    let tasks: Vec<_> = paths
        .iter()
        .zip(inputs)
        .zip(&tracers)
        .map(|((path, input), tracer)| {
            let cmd = cmd.to_owned();
            let path = path.clone();
            let tracer = tracer.clone();
            let cache = Arc::clone(&cache);
            let limits_key = limits_key.clone();
            let use_prelude = flags.use_prelude;
            move || -> RunOutput {
                let source = match input {
                    Ok(s) => s,
                    Err(msg) => {
                        return RunOutput {
                            code: EXIT_DIAGNOSTIC,
                            stdout: String::new(),
                            stderr: msg,
                            metrics: Metrics::new(),
                        }
                    }
                };
                let key = fg::pool::fnv1a(&[
                    cmd.as_bytes(),
                    &[u8::from(use_prelude)],
                    limits_key.as_bytes(),
                    source.as_bytes(),
                ]);
                if use_cache {
                    if let Some((code, stdout, stderr)) = cache.lookup(key) {
                        return RunOutput {
                            code,
                            stdout,
                            stderr,
                            metrics: Metrics::new(),
                        };
                    }
                }
                let output = crate::run_request(&cmd, &path, &source, use_prelude, limits, &tracer);
                if use_cache {
                    cache.insert(key, (output.code, output.stdout.clone(), output.stderr.clone()));
                }
                output
            }
        })
        .collect();

    let results = pool.run_batch(tasks);

    let mut merged = Metrics::new();
    merged.set_command(cmd);
    merged.set_source(&format!("<batch of {}>", paths.len()));
    let mut worst = 0u8;
    for (path, result) in paths.iter().zip(results) {
        match result {
            Ok(output) => {
                print!("{}", output.stdout);
                eprint!("{}", output.stderr);
                merged.merge(&output.metrics);
                worst = worst.max(output.code);
            }
            Err(msg) => {
                eprintln!("fg: internal error: {path}: pipeline crashed: {msg}");
                worst = worst.max(EXIT_CRASH);
            }
        }
    }
    crate::record_pool_stats(&mut merged, pool.jobs(), &pool.stats(), &cache);

    if flags.profile {
        eprint!("{}", merged.render_table());
    }
    if let Some(path) = &flags.metrics_json {
        let json = merged.to_json();
        if path == "-" {
            print!("{json}");
        } else if let Err(e) = std::fs::write(path, json) {
            eprintln!("fg: cannot write {path}: {e}");
            worst = worst.max(EXIT_DIAGNOSTIC);
        }
    }
    if flags.trace.is_some() || flags.trace_chrome.is_some() {
        let parts: Vec<_> = tracers.iter().map(|t| (t.events(), t.dropped())).collect();
        let (events, dropped) = trace::merge_worker_events(parts);
        let label = format!("<batch of {}>", paths.len());
        if let Some(path) = &flags.trace {
            if crate::write_report(path, &trace::render_jsonl(cmd, &label, &events, dropped))
                .is_err()
            {
                worst = worst.max(EXIT_DIAGNOSTIC);
            }
        }
        if let Some(path) = &flags.trace_chrome {
            if crate::write_report(path, &trace::render_chrome_json(&events)).is_err() {
                worst = worst.max(EXIT_DIAGNOSTIC);
            }
        }
    }
    worst
}
