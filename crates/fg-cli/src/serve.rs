//! `fg serve` — a check daemon speaking `fg-rpc/1`, line-delimited JSON
//! over TCP — and `fg rpc`, its one-shot client.
//!
//! # Protocol (`fg-rpc/1`)
//!
//! One request per line, one response per line. Requests:
//!
//! ```text
//! {"v":"fg-rpc/1","id":1,"method":"check","source":"iadd(1, 2)","prelude":false}
//! {"v":"fg-rpc/1","id":2,"method":"bench-json"}
//! {"v":"fg-rpc/1","id":3,"method":"stats"}
//! {"v":"fg-rpc/1","id":4,"method":"shutdown"}
//! ```
//!
//! `method` is any pipeline command (`check`, `explain`, `run`,
//! `direct`, `translate`, `elaborate`, `vm`, `bytecode`, `fmt`, `ast`)
//! or one of the daemon methods `bench-json`, `stats`, `shutdown`.
//! Responses:
//!
//! ```text
//! {"v":"fg-rpc/1","id":1,"ok":true,"exit":0,"cached":false,"output":"int\n","diagnostics":""}
//! {"v":"fg-rpc/1","id":9,"ok":false,"error":"..."}        (malformed request)
//! ```
//!
//! `exit` carries the CLI exit-code contract (0 ok, 1 diagnostic,
//! 3 caught crash); `output`/`diagnostics` are the buffered stdout and
//! stderr of the request. `stats` and `bench-json` return their JSON
//! document (fg-metrics/1 / fg-bench/1) as a string in `output`.
//!
//! # Execution model
//!
//! Requests dispatch onto the same [`fg::pool::WorkerPool`] as
//! `--jobs` batches, each under a fresh [`telemetry::limits::Budget`]
//! from the server's CLI flags, each isolated by `catch_unwind`.
//! Finished pipeline outcomes are memoized in a content-hash
//! [`fg::pool::CompileCache`]; a repeated identical request is a
//! recorded `pool.cache_hits` hit that replays the buffered outcome
//! without re-checking. Connections are accepted sequentially — the
//! parallelism is per-batch inside the pool, and the intended client is
//! a build driver holding one connection.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use telemetry::json::{self, Json};
use telemetry::trace::Tracer;
use telemetry::Metrics;

use crate::{CachedRun, Flags, EXIT_CRASH, EXIT_DIAGNOSTIC};

/// Compile-cache bound for the daemon (epoch-flushed when exceeded).
const CACHE_CAPACITY: usize = 4096;

/// The pipeline methods the daemon will run, i.e. every CLI subcommand
/// that takes a source program.
const PIPELINE_METHODS: [&str; 10] = [
    "check", "translate", "run", "direct", "elaborate", "explain", "vm", "bytecode", "fmt", "ast",
];

/// Shared daemon state: the pool, the cache, and the server's limits.
struct Daemon {
    pool: fg::pool::WorkerPool,
    cache: Arc<fg::pool::CompileCache<CachedRun>>,
    limits: telemetry::limits::Limits,
    limits_key: String,
    default_prelude: bool,
}

/// `fg serve --addr <host:port>`: binds, prints the bound address (so
/// `--addr 127.0.0.1:0` is discoverable), and serves until a `shutdown`
/// request. Returns 0 on a clean shutdown.
pub fn serve_main(flags: &Flags, args: &[String]) -> u8 {
    let Some(addr) = parse_addr(args) else {
        eprintln!("fg: serve: expected `--addr <host:port>`");
        return crate::usage();
    };
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("fg: serve: cannot bind {addr}: {e}");
            return EXIT_DIAGNOSTIC;
        }
    };
    let local = match listener.local_addr() {
        Ok(a) => a.to_string(),
        Err(_) => addr.clone(),
    };
    let pool = match fg::pool::WorkerPool::new(flags.jobs_resolved()) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("fg: serve: cannot spawn worker pool: {e}");
            return EXIT_CRASH;
        }
    };
    let limits = flags.limits();
    let daemon = Daemon {
        pool,
        cache: Arc::new(fg::pool::CompileCache::new(CACHE_CAPACITY)),
        limits,
        limits_key: format!("{limits:?}"),
        default_prelude: flags.use_prelude,
    };
    // The bound address is the daemon's one startup line: clients (and
    // the CI smoke test) read it to discover a port-0 allocation.
    println!("fg: serving fg-rpc/1 on {local}");
    let _ = std::io::stdout().flush();

    for stream in listener.incoming() {
        match stream {
            Ok(stream) => match handle_connection(stream, &daemon) {
                ConnOutcome::KeepServing => {}
                ConnOutcome::Shutdown => return 0,
            },
            Err(e) => {
                eprintln!("fg: serve: accept failed: {e}");
            }
        }
    }
    0
}

/// What a finished connection tells the accept loop.
enum ConnOutcome {
    KeepServing,
    Shutdown,
}

/// Serves one connection: request per line, response per line, until
/// EOF or a `shutdown` request.
fn handle_connection(stream: TcpStream, daemon: &Daemon) -> ConnOutcome {
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(e) => {
            eprintln!("fg: serve: cannot clone connection: {e}");
            return ConnOutcome::KeepServing;
        }
    };
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => return ConnOutcome::KeepServing,
        };
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = handle_request(&line, daemon);
        if writeln!(writer, "{response}").is_err() || writer.flush().is_err() {
            return ConnOutcome::KeepServing;
        }
        if shutdown {
            return ConnOutcome::Shutdown;
        }
    }
    ConnOutcome::KeepServing
}

/// Parses and dispatches one request line; returns the one-line
/// response and whether the daemon should shut down.
fn handle_request(line: &str, daemon: &Daemon) -> (String, bool) {
    let req = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => return (error_response(0, &format!("bad request: {e}")), false),
    };
    let id = req.get("id").and_then(Json::as_i64).unwrap_or(0);
    if req.get("v").and_then(Json::as_str) != Some("fg-rpc/1") {
        return (error_response(id, "unsupported protocol: expected v=\"fg-rpc/1\""), false);
    }
    let Some(method) = req.get("method").and_then(Json::as_str) else {
        return (error_response(id, "missing method"), false);
    };
    match method {
        "shutdown" => (
            format!("{{\"v\":\"fg-rpc/1\",\"id\":{id},\"ok\":true,\"exit\":0,\"shutdown\":true}}"),
            true,
        ),
        "stats" => {
            let mut metrics = Metrics::new();
            metrics.set_command("serve");
            metrics.set_source("<daemon>");
            crate::record_pool_stats(
                &mut metrics,
                daemon.pool.jobs(),
                &daemon.pool.stats(),
                &daemon.cache,
            );
            (doc_response(id, &metrics.to_json()), false)
        }
        "bench-json" => {
            // Quick mode unless the request says otherwise: a daemon
            // answering interactive clients should not block for the
            // full measurement budget by default.
            let quick = req.get("quick").and_then(Json::as_bool).unwrap_or(true);
            let report = daemon.pool.run_one(move || bench::runner::run_suite(quick));
            match report {
                Ok(report) => (doc_response(id, &report.to_json()), false),
                Err(panic) => (crash_response(id, &panic), false),
            }
        }
        m if PIPELINE_METHODS.contains(&m) => {
            let Some(source) = req.get("source").and_then(Json::as_str) else {
                return (error_response(id, "missing source"), false);
            };
            let prelude = req
                .get("prelude")
                .and_then(Json::as_bool)
                .unwrap_or(daemon.default_prelude);
            (pipeline_response(id, m, source, prelude, daemon), false)
        }
        other => (error_response(id, &format!("unknown method `{other}`")), false),
    }
}

/// Runs a pipeline method on the pool, consulting the compile cache
/// first. The cache key covers everything that determines the outcome:
/// method, prelude flag, server limits, and the source text.
fn pipeline_response(id: i64, method: &str, source: &str, prelude: bool, daemon: &Daemon) -> String {
    let key = fg::pool::fnv1a(&[
        method.as_bytes(),
        &[u8::from(prelude)],
        daemon.limits_key.as_bytes(),
        source.as_bytes(),
    ]);
    if let Some((code, stdout, stderr)) = daemon.cache.lookup(key) {
        return run_response(id, code, true, &stdout, &stderr);
    }
    let method_owned = method.to_owned();
    let source_owned = source.to_owned();
    let limits = daemon.limits;
    let outcome = daemon.pool.run_one(move || {
        let tracer = if method_owned == "explain" {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        };
        let output = crate::run_request(
            &method_owned,
            "<rpc>",
            &source_owned,
            prelude,
            limits,
            &tracer,
        );
        (output.code, output.stdout, output.stderr)
    });
    match outcome {
        Ok((code, stdout, stderr)) => {
            daemon.cache.insert(key, (code, stdout.clone(), stderr.clone()));
            run_response(id, code, false, &stdout, &stderr)
        }
        Err(panic) => crash_response(id, &panic),
    }
}

/// A successful (possibly nonzero-exit) pipeline response.
fn run_response(id: i64, code: u8, cached: bool, stdout: &str, stderr: &str) -> String {
    format!(
        "{{\"v\":\"fg-rpc/1\",\"id\":{id},\"ok\":{},\"exit\":{code},\"cached\":{cached},\"output\":{},\"diagnostics\":{}}}",
        code == 0,
        json::escape(stdout),
        json::escape(stderr),
    )
}

/// A response carrying a whole JSON document (fg-metrics/1,
/// fg-bench/1) as a string payload.
fn doc_response(id: i64, doc: &str) -> String {
    format!(
        "{{\"v\":\"fg-rpc/1\",\"id\":{id},\"ok\":true,\"exit\":0,\"output\":{}}}",
        json::escape(doc),
    )
}

/// A caught-panic response: the request crashed the pipeline, the
/// daemon is fine (exit-code 3 contract over the wire).
fn crash_response(id: i64, panic: &str) -> String {
    format!(
        "{{\"v\":\"fg-rpc/1\",\"id\":{id},\"ok\":false,\"exit\":{EXIT_CRASH},\"cached\":false,\"output\":\"\",\"diagnostics\":{}}}",
        json::escape(&format!("fg: internal error: pipeline crashed: {panic}\n")),
    )
}

/// A protocol-level error response (malformed request, unknown method).
fn error_response(id: i64, msg: &str) -> String {
    format!(
        "{{\"v\":\"fg-rpc/1\",\"id\":{id},\"ok\":false,\"error\":{}}}",
        json::escape(msg),
    )
}

/// Pulls `--addr <value>` out of a subcommand argument list.
fn parse_addr(args: &[String]) -> Option<String> {
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--addr" {
            return args.get(i + 1).cloned();
        }
        i += 1;
    }
    None
}

// ---------------------------------------------------------------------
// fg rpc — the one-shot client
// ---------------------------------------------------------------------

/// `fg rpc --addr <host:port> <method> [file.fg|-]`: sends one
/// `fg-rpc/1` request, prints the response payload, and maps the
/// response back onto the CLI exit-code contract. The tests and ci.sh
/// use this as the protocol's reference client.
pub fn rpc_main(flags: &Flags, args: &[String]) -> u8 {
    let Some(addr) = parse_addr(args) else {
        eprintln!("fg: rpc: expected `--addr <host:port>`");
        return crate::usage();
    };
    let positional: Vec<&String> = {
        let mut rest = Vec::new();
        let mut i = 0;
        while i < args.len() {
            if args[i] == "--addr" {
                i += 2;
                continue;
            }
            rest.push(&args[i]);
            i += 1;
        }
        rest
    };
    let Some(method) = positional.first() else {
        eprintln!("fg: rpc: expected a method (`check`, `stats`, `shutdown`, ...)");
        return crate::usage();
    };
    let mut request = format!(
        "{{\"v\":\"fg-rpc/1\",\"id\":1,\"method\":{}",
        json::escape(method),
    );
    if PIPELINE_METHODS.contains(&method.as_str()) {
        let Some(path) = positional.get(1) else {
            eprintln!("fg: rpc: method `{method}` needs a file argument");
            return crate::usage();
        };
        let source = match crate::read_source(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("fg: cannot read {path}: {e}");
                return EXIT_DIAGNOSTIC;
            }
        };
        let _ = write!(
            request,
            ",\"source\":{},\"prelude\":{}",
            json::escape(&source),
            flags.use_prelude,
        );
    }
    request.push('}');

    let stream = match TcpStream::connect(&addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fg: rpc: cannot connect to {addr}: {e}");
            return EXIT_DIAGNOSTIC;
        }
    };
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fg: rpc: cannot clone connection: {e}");
            return EXIT_DIAGNOSTIC;
        }
    });
    let mut writer = BufWriter::new(stream);
    if writeln!(writer, "{request}").is_err() || writer.flush().is_err() {
        eprintln!("fg: rpc: cannot send request");
        return EXIT_DIAGNOSTIC;
    }
    let mut response = String::new();
    match reader.read_line(&mut response) {
        Ok(0) | Err(_) => {
            eprintln!("fg: rpc: connection closed before a response arrived");
            return EXIT_DIAGNOSTIC;
        }
        Ok(_) => {}
    }
    // The raw response line is the client's stdout: scripts pipe it
    // into a JSON-aware consumer.
    println!("{}", response.trim_end());
    let Ok(parsed) = Json::parse(response.trim_end()) else {
        eprintln!("fg: rpc: response is not valid JSON");
        return EXIT_DIAGNOSTIC;
    };
    match parsed.get("exit").and_then(Json::as_i64) {
        Some(code) => u8::try_from(code).unwrap_or(EXIT_CRASH),
        // Protocol-level error with no exit code: a usage-shaped error.
        None => crate::EXIT_USAGE,
    }
}
