//! `fg` — the command-line driver for the F_G language.
//!
//! ```text
//! fg check <file.fg>       typecheck, print the program's F_G type
//! fg translate <file.fg>   print the System F translation
//! fg run <file.fg>         translate and evaluate on the System F machine
//! fg direct <file.fg>      evaluate with the direct interpreter
//! fg ast <file.fg>         print the parsed AST (debug form)
//! ```
//!
//! Pass `-` as the file to read from stdin, or `--prelude` before the
//! subcommand to wrap the program in the STL-flavoured prelude of
//! `fg::stdlib`.

use std::io::Read;
use std::process::ExitCode;

mod repl;

fn usage() -> ExitCode {
    eprintln!(
        "usage: fg [--prelude] <check|translate|run|direct|elaborate|ast> <file.fg|->  |  fg [--prelude] repl\n\
         \n\
         check      typecheck and print the F_G type\n\
         translate  print the dictionary-passing System F translation\n\
         run        translate, typecheck the output, and evaluate it\n\
         direct     evaluate with the direct F_G interpreter\n\
         elaborate  print the program with inferred type arguments inserted\n\
         vm         translate, compile to bytecode, and run on the VM\n\
         bytecode   print the compiled bytecode (disassembly)\n\
         fmt        reformat the program\n\
         ast        print the parsed AST\n\
         repl       interactive session (no file argument)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut use_prelude = false;
    if args.first().map(String::as_str) == Some("--prelude") {
        use_prelude = true;
        args.remove(0);
    }
    if args.as_slice() == ["repl"] {
        let stdin = std::io::stdin();
        return match repl::run_repl(stdin.lock(), std::io::stdout(), use_prelude) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("fg: io error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let [cmd, path] = args.as_slice() else {
        return usage();
    };
    if !matches!(
        cmd.as_str(),
        "check" | "translate" | "run" | "direct" | "elaborate" | "vm" | "bytecode" | "fmt"
            | "ast"
    ) {
        return usage();
    }
    let source = match read_source(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fg: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let full = if use_prelude {
        fg::stdlib::with_prelude(&source)
    } else {
        source
    };

    let expr = match fg::parser::parse_expr(&full) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("fg: parse error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if cmd == "ast" {
        println!("{expr:#?}");
        return ExitCode::SUCCESS;
    }
    if cmd == "fmt" {
        print!("{}", fg::format::format_program(&expr));
        return ExitCode::SUCCESS;
    }
    let compiled = match fg::check_program(&expr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("fg: {}", e.render(&full));
            return ExitCode::FAILURE;
        }
    };

    match cmd.as_str() {
        "check" => {
            println!("{}", compiled.ty);
            ExitCode::SUCCESS
        }
        "elaborate" => {
            println!("{}", compiled.elaborated);
            ExitCode::SUCCESS
        }
        "direct" => match fg::interp::run_direct(&compiled.elaborated) {
            Ok(v) => {
                println!("{v}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("fg: runtime error: {e}");
                ExitCode::FAILURE
            }
        },
        "translate" => {
            println!("{}", compiled.term);
            ExitCode::SUCCESS
        }
        "bytecode" => match system_f::vm::compile(&compiled.term) {
            Ok(p) => {
                print!("{p}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("fg: compile error: {e}");
                ExitCode::FAILURE
            }
        },
        "vm" => match system_f::vm::compile_and_run(&compiled.term) {
            Ok(v) => {
                println!("{v}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("fg: vm error: {e}");
                ExitCode::FAILURE
            }
        },
        "run" => {
            if let Err(e) = system_f::typecheck(&compiled.term) {
                eprintln!("fg: internal error: translation is ill-typed: {e}");
                return ExitCode::FAILURE;
            }
            match system_f::eval(&compiled.term) {
                Ok(v) => {
                    println!("{v}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("fg: runtime error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}

fn read_source(path: &str) -> std::io::Result<String> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf)?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path)
    }
}
