//! `fg` — the command-line driver for the F_G language.
//!
//! ```text
//! fg check <file.fg>...     typecheck, print the program's F_G type
//! fg translate <file.fg>... print the System F translation
//! fg run <file.fg>...       translate and evaluate on the System F machine
//! fg direct <file.fg>...    evaluate with the direct interpreter
//! fg explain <file.fg>...   explain model resolution and type equalities
//! fg ast <file.fg>...       print the parsed AST (debug form)
//! fg bench-json             run the benchmark suite, emit fg-bench/1 JSON
//! fg serve --addr H:P       fg-rpc/1 check daemon over TCP
//! fg rpc --addr H:P ...     one-shot fg-rpc/1 client (tests, scripts)
//! ```
//!
//! Pass `-` as the file to read from stdin, or `--prelude` before the
//! subcommand to wrap the program in the STL-flavoured prelude of
//! `fg::stdlib`. Several files may be given; they are processed in order
//! and the worst outcome determines the exit code.
//!
//! # Parallel batches and the check daemon
//!
//! `--jobs N` (or `--jobs auto`) runs a batch on a persistent pool of
//! `N` worker threads (`fg::pool`): work-stealing dispatch, per-task
//! panic isolation, deterministic input-order output, and a merged
//! telemetry report with a `pool.*` counter group. `fg serve
//! --addr 127.0.0.1:0` exposes the same pipeline as a line-delimited
//! JSON-over-TCP daemon speaking `fg-rpc/1` (see DESIGN.md §12), with a
//! content-hash compile cache; `fg rpc` is the matching client.
//!
//! # Exit codes
//!
//! | code | meaning |
//! |---|---|
//! | 0 | success |
//! | 1 | diagnostic: the program was rejected or failed at runtime |
//! | 2 | usage error |
//! | 3 | internal crash, caught and isolated (a bug in `fg`, not in the program) |
//!
//! # Resource limits
//!
//! Every stage of the pipeline runs under a resource budget
//! (`fg::limits`): `--fuel N` caps total work, `--max-depth N` caps
//! recursion, `--max-terms N` caps congruence nodes, `--max-dict-nodes N`
//! caps dictionary-plan nodes, and `--timeout-ms N` sets a wall-clock
//! deadline. `0` or `none` lifts a cap. The environment variables
//! `FG_FUEL`, `FG_MAX_DEPTH`, `FG_MAX_TERMS`, `FG_MAX_DICT_NODES`, and
//! `FG_TIMEOUT_MS` are read first; flags win. Exhaustion is a structured
//! diagnostic (exit 1), never an abort.
//!
//! `--inject-fault <point[@N][:panic]>` (or `FG_FAULT=`) arms the
//! deterministic fault-injection points (`parse`, `check.expr`,
//! `check.resolve_model`, `check.where_enter`, `interp.eval`, `sf.eval`,
//! `vm.run`) for robustness testing; see the `telemetry` crate.
//!
//! # Telemetry
//!
//! `--profile` prints a phase/counter table to stderr after the command
//! finishes; `--metrics-json <path>` writes the same data as an
//! `fg-metrics/1` JSON document (`-` for stdout). Both flags may appear
//! anywhere before the file argument and work with every subcommand that
//! runs the pipeline (`check`, `translate`, `elaborate`, `run`, `direct`,
//! `vm`, `bytecode`). Telemetry is emitted on error paths too, including
//! the `limits.*` counter group and a `budget_exhausted` trace instant
//! when a budget tripped. See the `telemetry` crate for the schema and
//! DESIGN.md for the counter glossary.
//!
//! `--trace <path>` writes an `fg-trace/1` JSONL record of the run's
//! spans and events (`-` for stdout); `--trace-chrome <path>` writes the
//! same record as Chrome trace-event JSON for Perfetto or
//! `chrome://tracing`. `fg explain <file.fg>` typechecks the program with
//! tracing on and prints, per instantiation site, the model-resolution
//! decision tree and the proof chain of every same-type constraint.

use std::fmt::Write as _;
use std::io::Read;
use std::process::ExitCode;
use std::sync::Arc;

use telemetry::limits::{Budget, Limits};
use telemetry::trace::Tracer;
use telemetry::Metrics;

mod batch;
mod explain;
mod repl;
mod serve;

/// Exit code: the program was rejected or failed at runtime.
const EXIT_DIAGNOSTIC: u8 = 1;
/// Exit code: the command line was malformed.
const EXIT_USAGE: u8 = 2;
/// Exit code: the pipeline itself crashed (caught panic).
const EXIT_CRASH: u8 = 3;

/// Stack size for per-file worker threads: the checker and evaluator
/// recurse, and the budget's depth cap (not the OS stack) should be what
/// bounds them.
const WORKER_STACK: usize = 256 * 1024 * 1024;

/// The full usage text, shared by `--help` (stdout, exit 0) and usage
/// errors (stderr, exit 2).
fn usage_text() -> &'static str {
    "usage: fg [--prelude] [--profile] [--metrics-json <path>] [--trace <path>] [--trace-chrome <path>]\n\
     \x20         [--fuel <n>] [--max-depth <n>] [--max-terms <n>] [--max-dict-nodes <n>] [--timeout-ms <n>]\n\
     \x20         [--inject-fault <spec>] [--jobs <n|auto>]\n\
     \x20         <check|translate|run|direct|elaborate|explain|vm|bytecode|fmt|ast> <file.fg|->...\n\
     \x20  |  fg [--prelude] repl  |  fg bench-json [--quick] [--out <path>]\n\
     \x20  |  fg serve --addr <host:port>  |  fg rpc --addr <host:port> <method> [file.fg|-]\n\
     \n\
     check      typecheck and print the F_G type\n\
     translate  print the dictionary-passing System F translation\n\
     run        translate, typecheck the output, and evaluate it\n\
     direct     evaluate with the direct F_G interpreter\n\
     elaborate  print the program with inferred type arguments inserted\n\
     explain    explain model resolution and same-type proofs\n\
     vm         translate, compile to bytecode, and run on the VM\n\
     bytecode   print the compiled bytecode (disassembly)\n\
     fmt        reformat the program\n\
     ast        print the parsed AST\n\
     repl       interactive session (no file argument)\n\
     bench-json run the benchmark suite, write an fg-bench/1 report\n\
     serve      fg-rpc/1 check daemon: line-delimited JSON over TCP\n\
     rpc        one-shot fg-rpc/1 client: send one request, print the reply\n\
     \n\
     --prelude             wrap the program in the stdlib prelude\n\
     --profile             print phase timings and counters to stderr\n\
     --metrics-json <path> write an fg-metrics/1 JSON report (- for stdout)\n\
     --trace <path>        write an fg-trace/1 JSONL trace (- for stdout)\n\
     --trace-chrome <path> write a Chrome trace-event JSON trace (- for stdout)\n\
     --fuel <n>            total work budget (0 or none = unlimited)\n\
     --max-depth <n>       recursion-depth budget\n\
     --max-terms <n>       congruence-node budget\n\
     --max-dict-nodes <n>  dictionary-plan-node budget\n\
     --timeout-ms <n>      wall-clock deadline in milliseconds\n\
     --inject-fault <spec> arm fault points: point[@N][:panic], comma-separated\n\
     --jobs <n|auto>       run the batch on a pool of n worker threads\n\
     --help                print this help and exit"
}

fn usage() -> u8 {
    eprintln!("{}", usage_text());
    EXIT_USAGE
}

/// Flags accepted in any order before the positional arguments.
///
/// The limit fields are three-valued: `None` = flag absent (defaults and
/// environment apply), `Some(None)` = cap explicitly lifted,
/// `Some(Some(n))` = cap explicitly set.
#[derive(Default)]
struct Flags {
    use_prelude: bool,
    profile: bool,
    metrics_json: Option<String>,
    trace: Option<String>,
    trace_chrome: Option<String>,
    fuel: Option<Option<u64>>,
    max_depth: Option<Option<u64>>,
    max_terms: Option<Option<u64>>,
    max_dict_nodes: Option<Option<u64>>,
    timeout_ms: Option<Option<u64>>,
    inject_fault: Option<String>,
    /// `--jobs`: pool width for batch mode. `None` = sequential legacy
    /// path, `Some(0)` = `auto` (one worker per available core).
    jobs: Option<usize>,
    help: bool,
}

impl Flags {
    /// The effective limits: CLI default caps, then environment
    /// variables, then explicit flags (strongest).
    fn limits(&self) -> Limits {
        let mut l = Limits::DEFAULT_CAPS.with_env();
        for (flag, slot) in [
            (&self.fuel, &mut l.fuel),
            (&self.max_depth, &mut l.max_depth),
            (&self.max_terms, &mut l.max_cc_terms),
            (&self.max_dict_nodes, &mut l.max_dict_nodes),
            (&self.timeout_ms, &mut l.timeout_ms),
        ] {
            if let Some(v) = flag {
                *slot = *v;
            }
        }
        l
    }

    /// Whether any flag asked for an event trace (which forces per-file
    /// tracers on and disables the batch compile cache).
    fn wants_trace(&self, cmd: &str) -> bool {
        cmd == "explain" || self.trace.is_some() || self.trace_chrome.is_some()
    }

    /// The pool width `--jobs` asked for, with `auto` (0) resolved to
    /// the number of available cores.
    fn jobs_resolved(&self) -> usize {
        match self.jobs {
            Some(0) | None => std::thread::available_parallelism().map_or(1, usize::from),
            Some(n) => n,
        }
    }
}

/// Parses a limit value: `0`, `none`, and `unlimited` lift the cap.
fn parse_limit(v: &str) -> Result<Option<u64>, ()> {
    let v = v.trim();
    if v.eq_ignore_ascii_case("none") || v.eq_ignore_ascii_case("unlimited") || v == "0" {
        return Ok(None);
    }
    v.parse::<u64>().map(Some).map_err(|_| ())
}

fn parse_flags(args: &mut Vec<String>) -> Result<Flags, u8> {
    let mut flags = Flags::default();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].clone();
        let take_value = |args: &mut Vec<String>| -> Result<String, u8> {
            if i + 1 >= args.len() {
                eprintln!("fg: {arg} needs an argument");
                return Err(usage());
            }
            args.remove(i);
            Ok(args.remove(i))
        };
        match arg.as_str() {
            "--prelude" => {
                flags.use_prelude = true;
                args.remove(i);
            }
            "--profile" => {
                flags.profile = true;
                args.remove(i);
            }
            "--help" | "-h" => {
                flags.help = true;
                args.remove(i);
            }
            "--jobs" => {
                let raw = take_value(args)?;
                let jobs = if raw.eq_ignore_ascii_case("auto") {
                    Some(0)
                } else {
                    raw.parse::<usize>().ok().filter(|&n| n > 0)
                };
                let Some(jobs) = jobs else {
                    eprintln!("fg: --jobs: `{raw}` is not a positive number or `auto`");
                    return Err(usage());
                };
                flags.jobs = Some(jobs);
            }
            "--metrics-json" => flags.metrics_json = Some(take_value(args)?),
            "--trace" => flags.trace = Some(take_value(args)?),
            "--trace-chrome" => flags.trace_chrome = Some(take_value(args)?),
            "--inject-fault" => flags.inject_fault = Some(take_value(args)?),
            "--fuel" | "--max-depth" | "--max-terms" | "--max-dict-nodes" | "--timeout-ms" => {
                let raw = take_value(args)?;
                let Ok(v) = parse_limit(&raw) else {
                    eprintln!("fg: {arg}: `{raw}` is not a number, `0`, or `none`");
                    return Err(usage());
                };
                match arg.as_str() {
                    "--fuel" => flags.fuel = Some(v),
                    "--max-depth" => flags.max_depth = Some(v),
                    "--max-terms" => flags.max_terms = Some(v),
                    "--max-dict-nodes" => flags.max_dict_nodes = Some(v),
                    _ => flags.timeout_ms = Some(v),
                }
            }
            _ => i += 1,
        }
    }
    Ok(flags)
}

fn main() -> ExitCode {
    ExitCode::from(real_main())
}

fn real_main() -> u8 {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let flags = match parse_flags(&mut args) {
        Ok(f) => f,
        Err(code) => return code,
    };
    if flags.help {
        println!("{}", usage_text());
        return 0;
    }
    // Arm fault injection (flag wins over FG_FAULT) before any pipeline
    // work runs.
    let fault_spec = flags
        .inject_fault
        .clone()
        .or_else(|| std::env::var("FG_FAULT").ok());
    if let Some(spec) = fault_spec {
        match telemetry::fault::FaultPlan::parse(&spec) {
            Ok(plan) => telemetry::fault::install(plan),
            Err(e) => {
                eprintln!("fg: bad fault spec `{spec}`: {e}");
                return usage();
            }
        }
    }
    if args.first().map(String::as_str) == Some("bench-json") {
        return bench_json(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("serve") {
        return serve::serve_main(&flags, &args[1..]);
    }
    if args.first().map(String::as_str) == Some("rpc") {
        return serve::rpc_main(&flags, &args[1..]);
    }
    if args.as_slice() == ["repl"] {
        let stdin = std::io::stdin();
        return match repl::run_repl(stdin.lock(), std::io::stdout(), flags.use_prelude, flags.limits()) {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("fg: io error: {e}");
                EXIT_DIAGNOSTIC
            }
        };
    }
    let Some((cmd, paths)) = args.split_first() else {
        return usage();
    };
    if paths.is_empty()
        || !matches!(
            cmd.as_str(),
            "check" | "translate" | "run" | "direct" | "elaborate" | "explain" | "vm" | "bytecode"
                | "fmt" | "ast"
        )
    {
        return usage();
    }
    // Batch mode: every file runs in an isolated worker thread, so one
    // crashing input cannot take down the rest of the batch. The exit
    // code is the worst outcome seen. With `--jobs`, the files are
    // dispatched onto a persistent work-stealing pool instead of one
    // fresh thread per file.
    if flags.jobs.is_some() {
        return batch::run_batch(cmd, paths, &flags);
    }
    let mut worst = 0u8;
    for path in paths {
        worst = worst.max(run_file(cmd, path, &flags));
    }
    worst
}

/// `fg bench-json [--quick] [--out <path>]` — runs the benchmark suite
/// in-process and writes the `fg-bench/1` JSON report to `--out`
/// (default stdout). `--quick` shrinks the measurement budgets for CI
/// smoke runs; progress goes to stderr so stdout stays machine-readable.
fn bench_json(args: &[String]) -> u8 {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--out" => {
                let Some(path) = args.get(i + 1) else {
                    eprintln!("fg: --out needs an argument");
                    return usage();
                };
                out = Some(path.clone());
                i += 1;
            }
            other => {
                eprintln!("fg: bench-json: unknown argument `{other}`");
                return usage();
            }
        }
        i += 1;
    }
    eprintln!(
        "fg: running benchmark suite ({} mode)...",
        if quick { "quick" } else { "full" }
    );
    let report = bench::runner::run_suite(quick);
    for e in &report.entries {
        eprintln!(
            "  {:<50} {:>12} ns/iter (n={})",
            format!("{}/{}{}{}", e.group, e.id, if e.param.is_empty() { "" } else { "/" }, e.param),
            e.mean_ns(),
            e.iters,
        );
    }
    let json = report.to_json();
    match out.as_deref() {
        None | Some("-") => {
            print!("{json}");
            0
        }
        Some(path) => match std::fs::write(path, json) {
            Ok(()) => {
                eprintln!("fg: wrote {path}");
                0
            }
            Err(e) => {
                eprintln!("fg: cannot write {path}: {e}");
                EXIT_DIAGNOSTIC
            }
        },
    }
}

/// One request's buffered outcome: the exit code plus everything the
/// pipeline would have printed. Buffering is what makes the pipeline
/// reentrant — the pool prints batches in input order, the daemon ships
/// output over the wire, and the compile cache replays it verbatim.
struct RunOutput {
    code: u8,
    stdout: String,
    stderr: String,
    metrics: Metrics,
}

/// Extracts a human-readable message from a caught panic payload.
fn panic_message(payload: &dyn std::any::Any) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "unknown panic".to_owned())
}

/// Runs one file on a dedicated worker thread, translating a panic into
/// [`EXIT_CRASH`] instead of aborting the batch.
fn run_file(cmd: &str, path: &str, flags: &Flags) -> u8 {
    // `explain` always needs the event record; otherwise tracing is on
    // only when an export was requested.
    let tracer = if flags.wants_trace(cmd) {
        Tracer::enabled()
    } else {
        Tracer::disabled()
    };
    let outcome = std::thread::scope(|scope| {
        let handle = std::thread::Builder::new()
            .name(format!("fg-{cmd}"))
            .stack_size(WORKER_STACK)
            .spawn_scoped(scope, || load_and_run(cmd, path, flags, &tracer));
        match handle {
            Ok(h) => h.join(),
            Err(e) => {
                eprintln!("fg: cannot spawn worker thread: {e}");
                Ok(RunOutput {
                    code: EXIT_CRASH,
                    stdout: String::new(),
                    stderr: String::new(),
                    metrics: Metrics::new(),
                })
            }
        }
    });
    match outcome {
        Ok(output) => {
            print!("{}", output.stdout);
            eprint!("{}", output.stderr);
            let emitted = finish(flags, output.metrics, &tracer, cmd, path);
            match (output.code, emitted) {
                (0, Err(code)) => code,
                (code, _) => code,
            }
        }
        Err(payload) => {
            let msg = panic_message(&*payload);
            eprintln!("fg: internal error: {path}: pipeline crashed: {msg}");
            EXIT_CRASH
        }
    }
}

/// Reads `path`, applies the prelude, and runs the pipeline, buffering
/// all output.
fn load_and_run(cmd: &str, path: &str, flags: &Flags, tracer: &Tracer) -> RunOutput {
    let source = match read_source(path) {
        Ok(s) => s,
        Err(e) => {
            return RunOutput {
                code: EXIT_DIAGNOSTIC,
                stdout: String::new(),
                stderr: format!("fg: cannot read {path}: {e}\n"),
                metrics: Metrics::new(),
            }
        }
    };
    run_request(cmd, path, &source, flags.use_prelude, flags.limits(), tracer)
}

/// The reentrant pipeline entry point: parses, checks, and runs one
/// program according to `cmd` under a fresh budget, emitting telemetry
/// on success *and* failure paths. Shared by the sequential driver, the
/// `--jobs` pool, and `fg serve`.
fn run_request(
    cmd: &str,
    path: &str,
    source: &str,
    use_prelude: bool,
    limits: Limits,
    tracer: &Tracer,
) -> RunOutput {
    let mut metrics = Metrics::new();
    metrics.set_command(cmd);
    metrics.set_source(path);
    let budget = Arc::new(Budget::new(limits));
    let full = if use_prelude {
        fg::stdlib::with_prelude(source)
    } else {
        source.to_owned()
    };
    let mut out = String::new();
    let mut err = String::new();
    let status = stages(cmd, path, &full, &budget, tracer, &mut metrics, &mut out, &mut err);
    record_limits(&mut metrics, &budget, tracer);
    RunOutput {
        code: status.err().unwrap_or(0),
        stdout: out,
        stderr: err,
        metrics,
    }
}

/// The command pipeline proper: everything from parse to output. All
/// output goes into the `out`/`err` buffers so the caller decides where
/// it lands (terminal, batch slot, RPC response, cache entry).
#[allow(clippy::too_many_arguments)]
fn stages(
    cmd: &str,
    path: &str,
    full: &str,
    budget: &Arc<Budget>,
    tracer: &Tracer,
    metrics: &mut Metrics,
    out: &mut String,
    err: &mut String,
) -> Result<(), u8> {
    let sp = tracer.begin("parse", vec![("source", path.into())]);
    let parsed = metrics.phase("parse", || {
        fg::parser::parse_expr_budgeted(full, budget.clone())
    });
    tracer.end(sp);
    let expr = match parsed {
        Ok(e) => e,
        Err(e) => {
            let _ = writeln!(err, "fg: parse error: {e}");
            return Err(EXIT_DIAGNOSTIC);
        }
    };

    if cmd == "ast" {
        let _ = writeln!(out, "{expr:#?}");
        return Ok(());
    }
    if cmd == "fmt" {
        let _ = write!(out, "{}", fg::format::format_program(&expr));
        return Ok(());
    }
    let sp = tracer.begin("check", vec![("source", path.into())]);
    // A large Err variant is fine here: this runs once per invocation.
    #[allow(clippy::result_large_err)]
    let checked = metrics.phase("check_translate", || {
        fg::check::check_program_budgeted(&expr, tracer.clone(), budget.clone())
    });
    tracer.end(sp);
    let compiled = match checked {
        Ok(c) => c,
        Err(e) => {
            let _ = writeln!(err, "fg: {}", e.render(full));
            return Err(EXIT_DIAGNOSTIC);
        }
    };
    record_check_stats(metrics, &compiled);

    match cmd {
        "check" => {
            let _ = writeln!(out, "{}", compiled.ty);
            Ok(())
        }
        "explain" => {
            let _ = write!(out, "{}", explain::render(&tracer.events(), full));
            Ok(())
        }
        "elaborate" => {
            let _ = writeln!(out, "{}", compiled.elaborated);
            Ok(())
        }
        "direct" => {
            let sp = tracer.begin("direct_eval", Vec::new());
            let outcome = metrics.phase("direct_eval", || {
                fg::interp::run_direct_budgeted(&compiled.elaborated, tracer.clone(), budget.clone())
            });
            tracer.end(sp);
            match outcome {
                Ok((v, stats)) => {
                    record_eval_stats(metrics, &stats);
                    let _ = writeln!(out, "{v}");
                    Ok(())
                }
                Err(e) => {
                    let _ = writeln!(err, "fg: runtime error: {e}");
                    Err(EXIT_DIAGNOSTIC)
                }
            }
        }
        "translate" => {
            let _ = writeln!(out, "{}", compiled.term);
            Ok(())
        }
        "bytecode" => {
            let outcome = metrics.phase("vm_compile", || system_f::vm::compile(&compiled.term));
            match outcome {
                Ok(p) => {
                    let _ = write!(out, "{p}");
                    Ok(())
                }
                Err(e) => {
                    let _ = writeln!(err, "fg: compile error: {e}");
                    Err(EXIT_DIAGNOSTIC)
                }
            }
        }
        "vm" => {
            let sp = tracer.begin("vm_compile", Vec::new());
            let program = metrics.phase("vm_compile", || system_f::vm::compile(&compiled.term));
            tracer.end(sp);
            match program {
                Ok(p) => {
                    let sp = tracer.begin("vm_run", Vec::new());
                    let outcome = metrics.phase("vm_run", || {
                        system_f::vm::run_profiled_budgeted(&p, budget)
                    });
                    tracer.end(sp);
                    match outcome {
                        Ok((v, stats)) => {
                            record_vm_stats(metrics, &stats);
                            let _ = writeln!(out, "{v}");
                            Ok(())
                        }
                        Err(e) => {
                            let _ = writeln!(err, "fg: vm error: {e}");
                            Err(EXIT_DIAGNOSTIC)
                        }
                    }
                }
                Err(e) => {
                    let _ = writeln!(err, "fg: compile error: {e}");
                    Err(EXIT_DIAGNOSTIC)
                }
            }
        }
        "run" => {
            let sp = tracer.begin("sf_typecheck", Vec::new());
            let well_typed = metrics.phase("sf_typecheck", || system_f::typecheck(&compiled.term));
            tracer.end(sp);
            if let Err(e) = well_typed {
                let _ = writeln!(err, "fg: internal error: translation is ill-typed: {e}");
                return Err(EXIT_DIAGNOSTIC);
            }
            let sp = tracer.begin("sf_eval", Vec::new());
            let outcome = metrics.phase("sf_eval", || system_f::eval_budgeted(&compiled.term, budget));
            tracer.end(sp);
            match outcome {
                Ok(v) => {
                    let _ = writeln!(out, "{v}");
                    Ok(())
                }
                Err(e) => {
                    let _ = writeln!(err, "fg: runtime error: {e}");
                    Err(EXIT_DIAGNOSTIC)
                }
            }
        }
        other => {
            let _ = writeln!(err, "fg: unknown command `{other}`");
            Err(EXIT_USAGE)
        }
    }
}

/// The checker's counters: scoped model lookup plus dictionary
/// construction (the `check` group) and congruence-closure work (the
/// `congruence` group).
fn record_check_stats(metrics: &mut Metrics, compiled: &fg::Compiled) {
    let cs = compiled.check_stats;
    for (key, value) in [
        ("model_lookups", cs.model_lookups),
        ("model_hits", cs.model_hits),
        ("model_misses", cs.model_misses),
        ("candidates_scanned", cs.candidates_scanned),
        ("max_scope_depth", cs.max_scope_depth),
        ("dicts_built", cs.dicts_built),
        ("dict_instantiations", cs.dict_instantiations),
    ] {
        metrics.set_counter("check", key, value);
    }
    let is = compiled.intern_stats;
    for (key, value) in [
        ("hits", is.hits),
        ("misses", is.misses),
        ("subst_hits", is.subst_hits),
        ("subst_misses", is.subst_misses),
        ("arena_types", is.arena_types),
        ("arena_constraints", is.arena_constraints),
    ] {
        metrics.set_counter("intern", key, value);
    }
    let ts = compiled.type_eq_stats;
    for (key, value) in [
        ("eq_queries", ts.eq_queries),
        ("assertions", ts.assertions),
        ("resolves", ts.resolves),
        ("merges", ts.merges),
        ("unions", ts.unions),
        ("finds", ts.finds),
        ("terms", ts.terms),
        ("term_bank_peak", ts.term_bank_peak),
    ] {
        metrics.set_counter("congruence", key, value);
    }
}

/// The direct interpreter's runtime counters (the `direct_eval` group).
fn record_eval_stats(metrics: &mut Metrics, stats: &fg::interp::EvalStats) {
    for (key, value) in [
        ("eval_steps", stats.eval_steps),
        ("model_lookups", stats.model_lookups),
        ("model_hits", stats.model_hits),
        ("model_misses", stats.model_misses),
        ("candidates_scanned", stats.candidates_scanned),
        ("max_scope_depth", stats.max_scope_depth),
        ("dicts_built", stats.dicts_built),
        ("dict_instantiations", stats.dict_instantiations),
    ] {
        metrics.set_counter("direct_eval", key, value);
    }
}

/// The VM's per-opcode dispatch counts and stack gauges (the
/// `vm_dispatch` group).
fn record_vm_stats(metrics: &mut Metrics, stats: &system_f::vm::VmStats) {
    metrics.set_counter("vm_dispatch", "instructions", stats.instructions());
    for &(name, count) in &stats.by_opcode {
        metrics.set_counter("vm_dispatch", name, count);
    }
    metrics.set_counter("vm_dispatch", "max_frame_depth", stats.max_frame_depth);
    metrics.set_counter("vm_dispatch", "max_stack_depth", stats.max_stack_depth);
}

/// The budget's consumption gauges (the `limits` group), plus a
/// `budget_exhausted` trace instant if a cap tripped.
fn record_limits(metrics: &mut Metrics, budget: &Budget, tracer: &Tracer) {
    for (key, value) in [
        ("fuel_spent", budget.fuel_spent()),
        ("depth_peak", budget.depth_peak()),
        ("cc_terms", budget.cc_terms()),
        ("dict_nodes", budget.dict_nodes()),
        ("elapsed_ms", budget.elapsed_ms()),
    ] {
        metrics.set_counter("limits", key, value);
    }
    if let Some(x) = budget.exhausted() {
        metrics.set_counter("limits", "exhausted", 1);
        tracer.instant(
            "budget_exhausted",
            vec![
                ("resource", x.resource.as_str().into()),
                ("limit", x.limit.into()),
            ],
        );
    }
}

/// A cached request outcome: exit code plus the buffered streams. The
/// value a [`fg::pool::CompileCache`] replays on a hit.
type CachedRun = (u8, String, String);

/// The pool's dispatch and cache counters (the `pool` counter group),
/// merged into the batch report and served by the daemon's `stats`
/// method.
fn record_pool_stats(
    metrics: &mut Metrics,
    workers: usize,
    stats: &fg::pool::PoolStats,
    cache: &fg::pool::CompileCache<CachedRun>,
) {
    for (key, value) in [
        ("workers", workers as u64),
        ("jobs", stats.jobs),
        ("steals", stats.steals),
        ("queue_depth_peak", stats.queue_depth_peak),
        ("panics", stats.panics),
        ("cache_hits", cache.hits()),
        ("cache_misses", cache.misses()),
        ("cache_entries", cache.len() as u64),
    ] {
        metrics.set_counter("pool", key, value);
    }
    for (id, ns) in stats.worker_busy_ns.iter().enumerate() {
        metrics.set_counter("pool", &format!("worker{id}_busy_ns"), *ns);
    }
}

/// Emits the collected telemetry as requested by the flags.
fn finish(flags: &Flags, metrics: Metrics, tracer: &Tracer, cmd: &str, source: &str) -> Result<(), u8> {
    if flags.profile {
        eprint!("{}", metrics.render_table());
    }
    if let Some(path) = &flags.metrics_json {
        let json = metrics.to_json();
        if path == "-" {
            print!("{json}");
        } else if let Err(e) = std::fs::write(path, json) {
            eprintln!("fg: cannot write {path}: {e}");
            return Err(EXIT_DIAGNOSTIC);
        }
    }
    if let Some(path) = &flags.trace {
        if write_report(path, &tracer.to_jsonl(cmd, source)).is_err() {
            return Err(EXIT_DIAGNOSTIC);
        }
    }
    if let Some(path) = &flags.trace_chrome {
        if write_report(path, &tracer.to_chrome_json()).is_err() {
            return Err(EXIT_DIAGNOSTIC);
        }
    }
    Ok(())
}

/// Writes a rendered report to `path` (`-` for stdout).
fn write_report(path: &str, contents: &str) -> Result<(), ()> {
    if path == "-" {
        print!("{contents}");
        return Ok(());
    }
    std::fs::write(path, contents).map_err(|e| {
        eprintln!("fg: cannot write {path}: {e}");
    })
}

fn read_source(path: &str) -> std::io::Result<String> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf)?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path)
    }
}
