//! `fg` — the command-line driver for the F_G language.
//!
//! ```text
//! fg check <file.fg>       typecheck, print the program's F_G type
//! fg translate <file.fg>   print the System F translation
//! fg run <file.fg>         translate and evaluate on the System F machine
//! fg direct <file.fg>      evaluate with the direct interpreter
//! fg explain <file.fg>     explain model resolution and type equalities
//! fg ast <file.fg>         print the parsed AST (debug form)
//! ```
//!
//! Pass `-` as the file to read from stdin, or `--prelude` before the
//! subcommand to wrap the program in the STL-flavoured prelude of
//! `fg::stdlib`.
//!
//! # Telemetry
//!
//! `--profile` prints a phase/counter table to stderr after the command
//! finishes; `--metrics-json <path>` writes the same data as an
//! `fg-metrics/1` JSON document (`-` for stdout). Both flags may appear
//! anywhere before the file argument and work with every subcommand that
//! runs the pipeline (`check`, `translate`, `elaborate`, `run`, `direct`,
//! `vm`, `bytecode`). See the `telemetry` crate for the schema and
//! DESIGN.md for the counter glossary.
//!
//! `--trace <path>` writes an `fg-trace/1` JSONL record of the run's
//! spans and events (`-` for stdout); `--trace-chrome <path>` writes the
//! same record as Chrome trace-event JSON for Perfetto or
//! `chrome://tracing`. `fg explain <file.fg>` typechecks the program with
//! tracing on and prints, per instantiation site, the model-resolution
//! decision tree and the proof chain of every same-type constraint.

use std::io::Read;
use std::process::ExitCode;

use telemetry::trace::Tracer;
use telemetry::Metrics;

mod explain;
mod repl;

fn usage() -> ExitCode {
    eprintln!(
        "usage: fg [--prelude] [--profile] [--metrics-json <path>] [--trace <path>] [--trace-chrome <path>] \
         <check|translate|run|direct|elaborate|explain|vm|bytecode|fmt|ast> <file.fg|->  |  fg [--prelude] repl\n\
         \n\
         check      typecheck and print the F_G type\n\
         translate  print the dictionary-passing System F translation\n\
         run        translate, typecheck the output, and evaluate it\n\
         direct     evaluate with the direct F_G interpreter\n\
         elaborate  print the program with inferred type arguments inserted\n\
         explain    explain model resolution and same-type proofs\n\
         vm         translate, compile to bytecode, and run on the VM\n\
         bytecode   print the compiled bytecode (disassembly)\n\
         fmt        reformat the program\n\
         ast        print the parsed AST\n\
         repl       interactive session (no file argument)\n\
         \n\
         --prelude             wrap the program in the stdlib prelude\n\
         --profile             print phase timings and counters to stderr\n\
         --metrics-json <path> write an fg-metrics/1 JSON report (- for stdout)\n\
         --trace <path>        write an fg-trace/1 JSONL trace (- for stdout)\n\
         --trace-chrome <path> write a Chrome trace-event JSON trace (- for stdout)"
    );
    ExitCode::from(2)
}

/// Flags accepted in any order before the positional arguments.
#[derive(Default)]
struct Flags {
    use_prelude: bool,
    profile: bool,
    metrics_json: Option<String>,
    trace: Option<String>,
    trace_chrome: Option<String>,
}

fn parse_flags(args: &mut Vec<String>) -> Result<Flags, ExitCode> {
    let mut flags = Flags::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--prelude" => {
                flags.use_prelude = true;
                args.remove(i);
            }
            "--profile" => {
                flags.profile = true;
                args.remove(i);
            }
            "--metrics-json" => {
                if i + 1 >= args.len() {
                    eprintln!("fg: --metrics-json needs a path argument");
                    return Err(usage());
                }
                args.remove(i);
                flags.metrics_json = Some(args.remove(i));
            }
            "--trace" => {
                if i + 1 >= args.len() {
                    eprintln!("fg: --trace needs a path argument");
                    return Err(usage());
                }
                args.remove(i);
                flags.trace = Some(args.remove(i));
            }
            "--trace-chrome" => {
                if i + 1 >= args.len() {
                    eprintln!("fg: --trace-chrome needs a path argument");
                    return Err(usage());
                }
                args.remove(i);
                flags.trace_chrome = Some(args.remove(i));
            }
            _ => i += 1,
        }
    }
    Ok(flags)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let flags = match parse_flags(&mut args) {
        Ok(f) => f,
        Err(code) => return code,
    };
    if args.as_slice() == ["repl"] {
        let stdin = std::io::stdin();
        return match repl::run_repl(stdin.lock(), std::io::stdout(), flags.use_prelude) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("fg: io error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let [cmd, path] = args.as_slice() else {
        return usage();
    };
    if !matches!(
        cmd.as_str(),
        "check" | "translate" | "run" | "direct" | "elaborate" | "explain" | "vm" | "bytecode"
            | "fmt" | "ast"
    ) {
        return usage();
    }
    let mut metrics = Metrics::new();
    metrics.set_command(cmd);
    metrics.set_source(path);
    // `explain` always needs the event record; otherwise tracing is on
    // only when an export was requested.
    let tracer = if cmd == "explain" || flags.trace.is_some() || flags.trace_chrome.is_some() {
        Tracer::enabled()
    } else {
        Tracer::disabled()
    };

    let source = match read_source(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fg: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let full = if flags.use_prelude {
        fg::stdlib::with_prelude(&source)
    } else {
        source
    };

    let sp = tracer.begin("parse", vec![("source", path.as_str().into())]);
    let parsed = metrics.phase("parse", || fg::parser::parse_expr(&full));
    tracer.end(sp);
    let expr = match parsed {
        Ok(e) => e,
        Err(e) => {
            eprintln!("fg: parse error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if cmd == "ast" {
        println!("{expr:#?}");
        return finish(flags, metrics, &tracer, cmd, path);
    }
    if cmd == "fmt" {
        print!("{}", fg::format::format_program(&expr));
        return finish(flags, metrics, &tracer, cmd, path);
    }
    let sp = tracer.begin("check", vec![("source", path.as_str().into())]);
    // A large Err variant is fine here: this runs once per invocation.
    #[allow(clippy::result_large_err)]
    let checked = metrics.phase("check_translate", || {
        fg::check::check_program_traced(&expr, tracer.clone())
    });
    tracer.end(sp);
    let compiled = match checked {
        Ok(c) => c,
        Err(e) => {
            eprintln!("fg: {}", e.render(&full));
            return ExitCode::FAILURE;
        }
    };
    record_check_stats(&mut metrics, &compiled);

    let status: Result<(), ExitCode> = match cmd.as_str() {
        "check" => {
            println!("{}", compiled.ty);
            Ok(())
        }
        "explain" => {
            print!("{}", explain::render(&tracer.events(), &full));
            Ok(())
        }
        "elaborate" => {
            println!("{}", compiled.elaborated);
            Ok(())
        }
        "direct" => {
            let sp = tracer.begin("direct_eval", Vec::new());
            let out = metrics.phase("direct_eval", || {
                fg::interp::run_direct_traced(&compiled.elaborated, tracer.clone())
            });
            tracer.end(sp);
            match out {
                Ok((v, stats)) => {
                    record_eval_stats(&mut metrics, &stats);
                    println!("{v}");
                    Ok(())
                }
                Err(e) => {
                    eprintln!("fg: runtime error: {e}");
                    Err(ExitCode::FAILURE)
                }
            }
        }
        "translate" => {
            println!("{}", compiled.term);
            Ok(())
        }
        "bytecode" => {
            let out = metrics.phase("vm_compile", || system_f::vm::compile(&compiled.term));
            match out {
                Ok(p) => {
                    print!("{p}");
                    Ok(())
                }
                Err(e) => {
                    eprintln!("fg: compile error: {e}");
                    Err(ExitCode::FAILURE)
                }
            }
        }
        "vm" => {
            let sp = tracer.begin("vm_compile", Vec::new());
            let program = metrics.phase("vm_compile", || system_f::vm::compile(&compiled.term));
            tracer.end(sp);
            match program {
                Ok(p) => {
                    let sp = tracer.begin("vm_run", Vec::new());
                    let out = metrics.phase("vm_run", || system_f::vm::run_profiled(&p));
                    tracer.end(sp);
                    match out {
                        Ok((v, stats)) => {
                            record_vm_stats(&mut metrics, &stats);
                            println!("{v}");
                            Ok(())
                        }
                        Err(e) => {
                            eprintln!("fg: vm error: {e}");
                            Err(ExitCode::FAILURE)
                        }
                    }
                }
                Err(e) => {
                    eprintln!("fg: compile error: {e}");
                    Err(ExitCode::FAILURE)
                }
            }
        }
        "run" => {
            let sp = tracer.begin("sf_typecheck", Vec::new());
            let well_typed =
                metrics.phase("sf_typecheck", || system_f::typecheck(&compiled.term));
            tracer.end(sp);
            if let Err(e) = well_typed {
                eprintln!("fg: internal error: translation is ill-typed: {e}");
                return ExitCode::FAILURE;
            }
            let sp = tracer.begin("sf_eval", Vec::new());
            let out = metrics.phase("sf_eval", || system_f::eval(&compiled.term));
            tracer.end(sp);
            match out {
                Ok(v) => {
                    println!("{v}");
                    Ok(())
                }
                Err(e) => {
                    eprintln!("fg: runtime error: {e}");
                    Err(ExitCode::FAILURE)
                }
            }
        }
        _ => return usage(),
    };
    match status {
        Ok(()) => finish(flags, metrics, &tracer, cmd, path),
        Err(code) => code,
    }
}

/// The checker's counters: scoped model lookup plus dictionary
/// construction (the `check` group) and congruence-closure work (the
/// `congruence` group).
fn record_check_stats(metrics: &mut Metrics, compiled: &fg::Compiled) {
    let cs = compiled.check_stats;
    for (key, value) in [
        ("model_lookups", cs.model_lookups),
        ("model_hits", cs.model_hits),
        ("model_misses", cs.model_misses),
        ("candidates_scanned", cs.candidates_scanned),
        ("max_scope_depth", cs.max_scope_depth),
        ("dicts_built", cs.dicts_built),
        ("dict_instantiations", cs.dict_instantiations),
    ] {
        metrics.set_counter("check", key, value);
    }
    let ts = compiled.type_eq_stats;
    for (key, value) in [
        ("eq_queries", ts.eq_queries),
        ("assertions", ts.assertions),
        ("resolves", ts.resolves),
        ("merges", ts.merges),
        ("unions", ts.unions),
        ("finds", ts.finds),
        ("terms", ts.terms),
        ("term_bank_peak", ts.term_bank_peak),
    ] {
        metrics.set_counter("congruence", key, value);
    }
}

/// The direct interpreter's runtime counters (the `direct_eval` group).
fn record_eval_stats(metrics: &mut Metrics, stats: &fg::interp::EvalStats) {
    for (key, value) in [
        ("eval_steps", stats.eval_steps),
        ("model_lookups", stats.model_lookups),
        ("model_hits", stats.model_hits),
        ("model_misses", stats.model_misses),
        ("candidates_scanned", stats.candidates_scanned),
        ("max_scope_depth", stats.max_scope_depth),
        ("dicts_built", stats.dicts_built),
        ("dict_instantiations", stats.dict_instantiations),
    ] {
        metrics.set_counter("direct_eval", key, value);
    }
}

/// The VM's per-opcode dispatch counts and stack gauges (the
/// `vm_dispatch` group).
fn record_vm_stats(metrics: &mut Metrics, stats: &system_f::vm::VmStats) {
    metrics.set_counter("vm_dispatch", "instructions", stats.instructions());
    for &(name, count) in &stats.by_opcode {
        metrics.set_counter("vm_dispatch", name, count);
    }
    metrics.set_counter("vm_dispatch", "max_frame_depth", stats.max_frame_depth);
    metrics.set_counter("vm_dispatch", "max_stack_depth", stats.max_stack_depth);
}

/// Emits the collected telemetry as requested by the flags.
fn finish(flags: Flags, metrics: Metrics, tracer: &Tracer, cmd: &str, source: &str) -> ExitCode {
    if flags.profile {
        eprint!("{}", metrics.render_table());
    }
    if let Some(path) = &flags.metrics_json {
        let json = metrics.to_json();
        if path == "-" {
            print!("{json}");
        } else if let Err(e) = std::fs::write(path, json) {
            eprintln!("fg: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &flags.trace {
        if write_report(path, &tracer.to_jsonl(cmd, source)).is_err() {
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &flags.trace_chrome {
        if write_report(path, &tracer.to_chrome_json()).is_err() {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Writes a rendered report to `path` (`-` for stdout).
fn write_report(path: &str, contents: &str) -> Result<(), ()> {
    if path == "-" {
        print!("{contents}");
        return Ok(());
    }
    std::fs::write(path, contents).map_err(|e| {
        eprintln!("fg: cannot write {path}: {e}");
    })
}

fn read_source(path: &str) -> std::io::Result<String> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf)?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path)
    }
}
