//! `fg` — the command-line driver for the F_G language.
//!
//! ```text
//! fg check <file.fg>...     typecheck, print the program's F_G type
//! fg translate <file.fg>... print the System F translation
//! fg run <file.fg>...       translate and evaluate on the System F machine
//! fg direct <file.fg>...    evaluate with the direct interpreter
//! fg explain <file.fg>...   explain model resolution and type equalities
//! fg ast <file.fg>...       print the parsed AST (debug form)
//! fg bench-json             run the benchmark suite, emit fg-bench/1 JSON
//! ```
//!
//! Pass `-` as the file to read from stdin, or `--prelude` before the
//! subcommand to wrap the program in the STL-flavoured prelude of
//! `fg::stdlib`. Several files may be given; they are processed in order
//! and the worst outcome determines the exit code.
//!
//! # Exit codes
//!
//! | code | meaning |
//! |---|---|
//! | 0 | success |
//! | 1 | diagnostic: the program was rejected or failed at runtime |
//! | 2 | usage error |
//! | 3 | internal crash, caught and isolated (a bug in `fg`, not in the program) |
//!
//! # Resource limits
//!
//! Every stage of the pipeline runs under a resource budget
//! (`fg::limits`): `--fuel N` caps total work, `--max-depth N` caps
//! recursion, `--max-terms N` caps congruence nodes, `--max-dict-nodes N`
//! caps dictionary-plan nodes, and `--timeout-ms N` sets a wall-clock
//! deadline. `0` or `none` lifts a cap. The environment variables
//! `FG_FUEL`, `FG_MAX_DEPTH`, `FG_MAX_TERMS`, `FG_MAX_DICT_NODES`, and
//! `FG_TIMEOUT_MS` are read first; flags win. Exhaustion is a structured
//! diagnostic (exit 1), never an abort.
//!
//! `--inject-fault <point[@N][:panic]>` (or `FG_FAULT=`) arms the
//! deterministic fault-injection points (`parse`, `check.expr`,
//! `check.resolve_model`, `check.where_enter`, `interp.eval`, `sf.eval`,
//! `vm.run`) for robustness testing; see the `telemetry` crate.
//!
//! # Telemetry
//!
//! `--profile` prints a phase/counter table to stderr after the command
//! finishes; `--metrics-json <path>` writes the same data as an
//! `fg-metrics/1` JSON document (`-` for stdout). Both flags may appear
//! anywhere before the file argument and work with every subcommand that
//! runs the pipeline (`check`, `translate`, `elaborate`, `run`, `direct`,
//! `vm`, `bytecode`). Telemetry is emitted on error paths too, including
//! the `limits.*` counter group and a `budget_exhausted` trace instant
//! when a budget tripped. See the `telemetry` crate for the schema and
//! DESIGN.md for the counter glossary.
//!
//! `--trace <path>` writes an `fg-trace/1` JSONL record of the run's
//! spans and events (`-` for stdout); `--trace-chrome <path>` writes the
//! same record as Chrome trace-event JSON for Perfetto or
//! `chrome://tracing`. `fg explain <file.fg>` typechecks the program with
//! tracing on and prints, per instantiation site, the model-resolution
//! decision tree and the proof chain of every same-type constraint.

use std::io::Read;
use std::process::ExitCode;
use std::sync::Arc;

use telemetry::limits::{Budget, Limits};
use telemetry::trace::Tracer;
use telemetry::Metrics;

mod explain;
mod repl;

/// Exit code: the program was rejected or failed at runtime.
const EXIT_DIAGNOSTIC: u8 = 1;
/// Exit code: the command line was malformed.
const EXIT_USAGE: u8 = 2;
/// Exit code: the pipeline itself crashed (caught panic).
const EXIT_CRASH: u8 = 3;

/// Stack size for per-file worker threads: the checker and evaluator
/// recurse, and the budget's depth cap (not the OS stack) should be what
/// bounds them.
const WORKER_STACK: usize = 256 * 1024 * 1024;

fn usage() -> u8 {
    eprintln!(
        "usage: fg [--prelude] [--profile] [--metrics-json <path>] [--trace <path>] [--trace-chrome <path>]\n\
         \x20         [--fuel <n>] [--max-depth <n>] [--max-terms <n>] [--max-dict-nodes <n>] [--timeout-ms <n>]\n\
         \x20         [--inject-fault <spec>]\n\
         \x20         <check|translate|run|direct|elaborate|explain|vm|bytecode|fmt|ast> <file.fg|->...\n\
         \x20  |  fg [--prelude] repl  |  fg bench-json [--quick] [--out <path>]\n\
         \n\
         check      typecheck and print the F_G type\n\
         translate  print the dictionary-passing System F translation\n\
         run        translate, typecheck the output, and evaluate it\n\
         direct     evaluate with the direct F_G interpreter\n\
         elaborate  print the program with inferred type arguments inserted\n\
         explain    explain model resolution and same-type proofs\n\
         vm         translate, compile to bytecode, and run on the VM\n\
         bytecode   print the compiled bytecode (disassembly)\n\
         fmt        reformat the program\n\
         ast        print the parsed AST\n\
         repl       interactive session (no file argument)\n\
         bench-json run the benchmark suite, write an fg-bench/1 report\n\
         \n\
         --prelude             wrap the program in the stdlib prelude\n\
         --profile             print phase timings and counters to stderr\n\
         --metrics-json <path> write an fg-metrics/1 JSON report (- for stdout)\n\
         --trace <path>        write an fg-trace/1 JSONL trace (- for stdout)\n\
         --trace-chrome <path> write a Chrome trace-event JSON trace (- for stdout)\n\
         --fuel <n>            total work budget (0 or none = unlimited)\n\
         --max-depth <n>       recursion-depth budget\n\
         --max-terms <n>       congruence-node budget\n\
         --max-dict-nodes <n>  dictionary-plan-node budget\n\
         --timeout-ms <n>      wall-clock deadline in milliseconds\n\
         --inject-fault <spec> arm fault points: point[@N][:panic], comma-separated"
    );
    EXIT_USAGE
}

/// Flags accepted in any order before the positional arguments.
///
/// The limit fields are three-valued: `None` = flag absent (defaults and
/// environment apply), `Some(None)` = cap explicitly lifted,
/// `Some(Some(n))` = cap explicitly set.
#[derive(Default)]
struct Flags {
    use_prelude: bool,
    profile: bool,
    metrics_json: Option<String>,
    trace: Option<String>,
    trace_chrome: Option<String>,
    fuel: Option<Option<u64>>,
    max_depth: Option<Option<u64>>,
    max_terms: Option<Option<u64>>,
    max_dict_nodes: Option<Option<u64>>,
    timeout_ms: Option<Option<u64>>,
    inject_fault: Option<String>,
}

impl Flags {
    /// The effective limits: CLI default caps, then environment
    /// variables, then explicit flags (strongest).
    fn limits(&self) -> Limits {
        let mut l = Limits::DEFAULT_CAPS.with_env();
        for (flag, slot) in [
            (&self.fuel, &mut l.fuel),
            (&self.max_depth, &mut l.max_depth),
            (&self.max_terms, &mut l.max_cc_terms),
            (&self.max_dict_nodes, &mut l.max_dict_nodes),
            (&self.timeout_ms, &mut l.timeout_ms),
        ] {
            if let Some(v) = flag {
                *slot = *v;
            }
        }
        l
    }
}

/// Parses a limit value: `0`, `none`, and `unlimited` lift the cap.
fn parse_limit(v: &str) -> Result<Option<u64>, ()> {
    let v = v.trim();
    if v.eq_ignore_ascii_case("none") || v.eq_ignore_ascii_case("unlimited") || v == "0" {
        return Ok(None);
    }
    v.parse::<u64>().map(Some).map_err(|_| ())
}

fn parse_flags(args: &mut Vec<String>) -> Result<Flags, u8> {
    let mut flags = Flags::default();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].clone();
        let take_value = |args: &mut Vec<String>| -> Result<String, u8> {
            if i + 1 >= args.len() {
                eprintln!("fg: {arg} needs an argument");
                return Err(usage());
            }
            args.remove(i);
            Ok(args.remove(i))
        };
        match arg.as_str() {
            "--prelude" => {
                flags.use_prelude = true;
                args.remove(i);
            }
            "--profile" => {
                flags.profile = true;
                args.remove(i);
            }
            "--metrics-json" => flags.metrics_json = Some(take_value(args)?),
            "--trace" => flags.trace = Some(take_value(args)?),
            "--trace-chrome" => flags.trace_chrome = Some(take_value(args)?),
            "--inject-fault" => flags.inject_fault = Some(take_value(args)?),
            "--fuel" | "--max-depth" | "--max-terms" | "--max-dict-nodes" | "--timeout-ms" => {
                let raw = take_value(args)?;
                let Ok(v) = parse_limit(&raw) else {
                    eprintln!("fg: {arg}: `{raw}` is not a number, `0`, or `none`");
                    return Err(usage());
                };
                match arg.as_str() {
                    "--fuel" => flags.fuel = Some(v),
                    "--max-depth" => flags.max_depth = Some(v),
                    "--max-terms" => flags.max_terms = Some(v),
                    "--max-dict-nodes" => flags.max_dict_nodes = Some(v),
                    _ => flags.timeout_ms = Some(v),
                }
            }
            _ => i += 1,
        }
    }
    Ok(flags)
}

fn main() -> ExitCode {
    ExitCode::from(real_main())
}

fn real_main() -> u8 {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let flags = match parse_flags(&mut args) {
        Ok(f) => f,
        Err(code) => return code,
    };
    // Arm fault injection (flag wins over FG_FAULT) before any pipeline
    // work runs.
    let fault_spec = flags
        .inject_fault
        .clone()
        .or_else(|| std::env::var("FG_FAULT").ok());
    if let Some(spec) = fault_spec {
        match telemetry::fault::FaultPlan::parse(&spec) {
            Ok(plan) => telemetry::fault::install(plan),
            Err(e) => {
                eprintln!("fg: bad fault spec `{spec}`: {e}");
                return usage();
            }
        }
    }
    if args.first().map(String::as_str) == Some("bench-json") {
        return bench_json(&args[1..]);
    }
    if args.as_slice() == ["repl"] {
        let stdin = std::io::stdin();
        return match repl::run_repl(stdin.lock(), std::io::stdout(), flags.use_prelude, flags.limits()) {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("fg: io error: {e}");
                EXIT_DIAGNOSTIC
            }
        };
    }
    let Some((cmd, paths)) = args.split_first() else {
        return usage();
    };
    if paths.is_empty()
        || !matches!(
            cmd.as_str(),
            "check" | "translate" | "run" | "direct" | "elaborate" | "explain" | "vm" | "bytecode"
                | "fmt" | "ast"
        )
    {
        return usage();
    }
    // Batch mode: every file runs in an isolated worker thread, so one
    // crashing input cannot take down the rest of the batch. The exit
    // code is the worst outcome seen.
    let mut worst = 0u8;
    for path in paths {
        worst = worst.max(run_file(cmd, path, &flags));
    }
    worst
}

/// `fg bench-json [--quick] [--out <path>]` — runs the benchmark suite
/// in-process and writes the `fg-bench/1` JSON report to `--out`
/// (default stdout). `--quick` shrinks the measurement budgets for CI
/// smoke runs; progress goes to stderr so stdout stays machine-readable.
fn bench_json(args: &[String]) -> u8 {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--out" => {
                let Some(path) = args.get(i + 1) else {
                    eprintln!("fg: --out needs an argument");
                    return usage();
                };
                out = Some(path.clone());
                i += 1;
            }
            other => {
                eprintln!("fg: bench-json: unknown argument `{other}`");
                return usage();
            }
        }
        i += 1;
    }
    eprintln!(
        "fg: running benchmark suite ({} mode)...",
        if quick { "quick" } else { "full" }
    );
    let report = bench::runner::run_suite(quick);
    for e in &report.entries {
        eprintln!(
            "  {:<50} {:>12} ns/iter (n={})",
            format!("{}/{}{}{}", e.group, e.id, if e.param.is_empty() { "" } else { "/" }, e.param),
            e.mean_ns(),
            e.iters,
        );
    }
    let json = report.to_json();
    match out.as_deref() {
        None | Some("-") => {
            print!("{json}");
            0
        }
        Some(path) => match std::fs::write(path, json) {
            Ok(()) => {
                eprintln!("fg: wrote {path}");
                0
            }
            Err(e) => {
                eprintln!("fg: cannot write {path}: {e}");
                EXIT_DIAGNOSTIC
            }
        },
    }
}

/// Runs one file on a dedicated worker thread, translating a panic into
/// [`EXIT_CRASH`] instead of aborting the batch.
fn run_file(cmd: &str, path: &str, flags: &Flags) -> u8 {
    let outcome = std::thread::scope(|scope| {
        let handle = std::thread::Builder::new()
            .name(format!("fg-{cmd}"))
            .stack_size(WORKER_STACK)
            .spawn_scoped(scope, || pipeline(cmd, path, flags));
        match handle {
            Ok(h) => h.join(),
            Err(e) => {
                eprintln!("fg: cannot spawn worker thread: {e}");
                Ok(EXIT_CRASH)
            }
        }
    });
    match outcome {
        Ok(code) => code,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "unknown panic".to_owned());
            eprintln!("fg: internal error: {path}: pipeline crashed: {msg}");
            EXIT_CRASH
        }
    }
}

/// Parses, checks, and runs one file according to `cmd`, emitting
/// telemetry on success *and* failure paths.
fn pipeline(cmd: &str, path: &str, flags: &Flags) -> u8 {
    let mut metrics = Metrics::new();
    metrics.set_command(cmd);
    metrics.set_source(path);
    let budget = Arc::new(Budget::new(flags.limits()));
    // `explain` always needs the event record; otherwise tracing is on
    // only when an export was requested.
    let tracer = if cmd == "explain" || flags.trace.is_some() || flags.trace_chrome.is_some() {
        Tracer::enabled()
    } else {
        Tracer::disabled()
    };

    let source = match read_source(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fg: cannot read {path}: {e}");
            return EXIT_DIAGNOSTIC;
        }
    };
    let full = if flags.use_prelude {
        fg::stdlib::with_prelude(&source)
    } else {
        source
    };

    let status = stages(cmd, path, &full, &budget, &tracer, &mut metrics);
    record_limits(&mut metrics, &budget, &tracer);
    let emitted = finish(flags, metrics, &tracer, cmd, path);
    match (status, emitted) {
        (Ok(()), Ok(())) => 0,
        (Ok(()), Err(code)) | (Err(code), _) => code,
    }
}

/// The command pipeline proper: everything from parse to output.
fn stages(
    cmd: &str,
    path: &str,
    full: &str,
    budget: &Arc<Budget>,
    tracer: &Tracer,
    metrics: &mut Metrics,
) -> Result<(), u8> {
    let sp = tracer.begin("parse", vec![("source", path.into())]);
    let parsed = metrics.phase("parse", || {
        fg::parser::parse_expr_budgeted(full, budget.clone())
    });
    tracer.end(sp);
    let expr = match parsed {
        Ok(e) => e,
        Err(e) => {
            eprintln!("fg: parse error: {e}");
            return Err(EXIT_DIAGNOSTIC);
        }
    };

    if cmd == "ast" {
        println!("{expr:#?}");
        return Ok(());
    }
    if cmd == "fmt" {
        print!("{}", fg::format::format_program(&expr));
        return Ok(());
    }
    let sp = tracer.begin("check", vec![("source", path.into())]);
    // A large Err variant is fine here: this runs once per invocation.
    #[allow(clippy::result_large_err)]
    let checked = metrics.phase("check_translate", || {
        fg::check::check_program_budgeted(&expr, tracer.clone(), budget.clone())
    });
    tracer.end(sp);
    let compiled = match checked {
        Ok(c) => c,
        Err(e) => {
            eprintln!("fg: {}", e.render(full));
            return Err(EXIT_DIAGNOSTIC);
        }
    };
    record_check_stats(metrics, &compiled);

    match cmd {
        "check" => {
            println!("{}", compiled.ty);
            Ok(())
        }
        "explain" => {
            print!("{}", explain::render(&tracer.events(), full));
            Ok(())
        }
        "elaborate" => {
            println!("{}", compiled.elaborated);
            Ok(())
        }
        "direct" => {
            let sp = tracer.begin("direct_eval", Vec::new());
            let out = metrics.phase("direct_eval", || {
                fg::interp::run_direct_budgeted(&compiled.elaborated, tracer.clone(), budget.clone())
            });
            tracer.end(sp);
            match out {
                Ok((v, stats)) => {
                    record_eval_stats(metrics, &stats);
                    println!("{v}");
                    Ok(())
                }
                Err(e) => {
                    eprintln!("fg: runtime error: {e}");
                    Err(EXIT_DIAGNOSTIC)
                }
            }
        }
        "translate" => {
            println!("{}", compiled.term);
            Ok(())
        }
        "bytecode" => {
            let out = metrics.phase("vm_compile", || system_f::vm::compile(&compiled.term));
            match out {
                Ok(p) => {
                    print!("{p}");
                    Ok(())
                }
                Err(e) => {
                    eprintln!("fg: compile error: {e}");
                    Err(EXIT_DIAGNOSTIC)
                }
            }
        }
        "vm" => {
            let sp = tracer.begin("vm_compile", Vec::new());
            let program = metrics.phase("vm_compile", || system_f::vm::compile(&compiled.term));
            tracer.end(sp);
            match program {
                Ok(p) => {
                    let sp = tracer.begin("vm_run", Vec::new());
                    let out = metrics.phase("vm_run", || {
                        system_f::vm::run_profiled_budgeted(&p, budget)
                    });
                    tracer.end(sp);
                    match out {
                        Ok((v, stats)) => {
                            record_vm_stats(metrics, &stats);
                            println!("{v}");
                            Ok(())
                        }
                        Err(e) => {
                            eprintln!("fg: vm error: {e}");
                            Err(EXIT_DIAGNOSTIC)
                        }
                    }
                }
                Err(e) => {
                    eprintln!("fg: compile error: {e}");
                    Err(EXIT_DIAGNOSTIC)
                }
            }
        }
        "run" => {
            let sp = tracer.begin("sf_typecheck", Vec::new());
            let well_typed = metrics.phase("sf_typecheck", || system_f::typecheck(&compiled.term));
            tracer.end(sp);
            if let Err(e) = well_typed {
                eprintln!("fg: internal error: translation is ill-typed: {e}");
                return Err(EXIT_DIAGNOSTIC);
            }
            let sp = tracer.begin("sf_eval", Vec::new());
            let out = metrics.phase("sf_eval", || system_f::eval_budgeted(&compiled.term, budget));
            tracer.end(sp);
            match out {
                Ok(v) => {
                    println!("{v}");
                    Ok(())
                }
                Err(e) => {
                    eprintln!("fg: runtime error: {e}");
                    Err(EXIT_DIAGNOSTIC)
                }
            }
        }
        _ => Err(usage()),
    }
}

/// The checker's counters: scoped model lookup plus dictionary
/// construction (the `check` group) and congruence-closure work (the
/// `congruence` group).
fn record_check_stats(metrics: &mut Metrics, compiled: &fg::Compiled) {
    let cs = compiled.check_stats;
    for (key, value) in [
        ("model_lookups", cs.model_lookups),
        ("model_hits", cs.model_hits),
        ("model_misses", cs.model_misses),
        ("candidates_scanned", cs.candidates_scanned),
        ("max_scope_depth", cs.max_scope_depth),
        ("dicts_built", cs.dicts_built),
        ("dict_instantiations", cs.dict_instantiations),
    ] {
        metrics.set_counter("check", key, value);
    }
    let is = compiled.intern_stats;
    for (key, value) in [
        ("hits", is.hits),
        ("misses", is.misses),
        ("subst_hits", is.subst_hits),
        ("subst_misses", is.subst_misses),
        ("arena_types", is.arena_types),
        ("arena_constraints", is.arena_constraints),
    ] {
        metrics.set_counter("intern", key, value);
    }
    let ts = compiled.type_eq_stats;
    for (key, value) in [
        ("eq_queries", ts.eq_queries),
        ("assertions", ts.assertions),
        ("resolves", ts.resolves),
        ("merges", ts.merges),
        ("unions", ts.unions),
        ("finds", ts.finds),
        ("terms", ts.terms),
        ("term_bank_peak", ts.term_bank_peak),
    ] {
        metrics.set_counter("congruence", key, value);
    }
}

/// The direct interpreter's runtime counters (the `direct_eval` group).
fn record_eval_stats(metrics: &mut Metrics, stats: &fg::interp::EvalStats) {
    for (key, value) in [
        ("eval_steps", stats.eval_steps),
        ("model_lookups", stats.model_lookups),
        ("model_hits", stats.model_hits),
        ("model_misses", stats.model_misses),
        ("candidates_scanned", stats.candidates_scanned),
        ("max_scope_depth", stats.max_scope_depth),
        ("dicts_built", stats.dicts_built),
        ("dict_instantiations", stats.dict_instantiations),
    ] {
        metrics.set_counter("direct_eval", key, value);
    }
}

/// The VM's per-opcode dispatch counts and stack gauges (the
/// `vm_dispatch` group).
fn record_vm_stats(metrics: &mut Metrics, stats: &system_f::vm::VmStats) {
    metrics.set_counter("vm_dispatch", "instructions", stats.instructions());
    for &(name, count) in &stats.by_opcode {
        metrics.set_counter("vm_dispatch", name, count);
    }
    metrics.set_counter("vm_dispatch", "max_frame_depth", stats.max_frame_depth);
    metrics.set_counter("vm_dispatch", "max_stack_depth", stats.max_stack_depth);
}

/// The budget's consumption gauges (the `limits` group), plus a
/// `budget_exhausted` trace instant if a cap tripped.
fn record_limits(metrics: &mut Metrics, budget: &Budget, tracer: &Tracer) {
    for (key, value) in [
        ("fuel_spent", budget.fuel_spent()),
        ("depth_peak", budget.depth_peak()),
        ("cc_terms", budget.cc_terms()),
        ("dict_nodes", budget.dict_nodes()),
        ("elapsed_ms", budget.elapsed_ms()),
    ] {
        metrics.set_counter("limits", key, value);
    }
    if let Some(x) = budget.exhausted() {
        metrics.set_counter("limits", "exhausted", 1);
        tracer.instant(
            "budget_exhausted",
            vec![
                ("resource", x.resource.as_str().into()),
                ("limit", x.limit.into()),
            ],
        );
    }
}

/// Emits the collected telemetry as requested by the flags.
fn finish(flags: &Flags, metrics: Metrics, tracer: &Tracer, cmd: &str, source: &str) -> Result<(), u8> {
    if flags.profile {
        eprint!("{}", metrics.render_table());
    }
    if let Some(path) = &flags.metrics_json {
        let json = metrics.to_json();
        if path == "-" {
            print!("{json}");
        } else if let Err(e) = std::fs::write(path, json) {
            eprintln!("fg: cannot write {path}: {e}");
            return Err(EXIT_DIAGNOSTIC);
        }
    }
    if let Some(path) = &flags.trace {
        if write_report(path, &tracer.to_jsonl(cmd, source)).is_err() {
            return Err(EXIT_DIAGNOSTIC);
        }
    }
    if let Some(path) = &flags.trace_chrome {
        if write_report(path, &tracer.to_chrome_json()).is_err() {
            return Err(EXIT_DIAGNOSTIC);
        }
    }
    Ok(())
}

/// Writes a rendered report to `path` (`-` for stdout).
fn write_report(path: &str, contents: &str) -> Result<(), ()> {
    if path == "-" {
        print!("{contents}");
        return Ok(());
    }
    std::fs::write(path, contents).map_err(|e| {
        eprintln!("fg: cannot write {path}: {e}");
    })
}

fn read_source(path: &str) -> std::io::Result<String> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf)?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path)
    }
}
