#!/usr/bin/env python3
"""fg-bench/1 schema validation and performance regression gate.

Usage:
    bench_gate.py validate FILE...
    bench_gate.py compare BASELINE CURRENT...
    bench_gate.py scaling FILE [MIN_SPEEDUP]

``validate`` strictly checks each FILE against the fg-bench/1 schema
emitted by ``fg bench-json`` and the vendored criterion harness:
a top-level object with ``schema`` = "fg-bench/1", a ``harness`` string,
and a ``benches`` array whose entries carry exactly ``group``, ``id``,
``param``, ``iters``, ``total_ns``, and ``mean_ns`` with consistent
values (mean_ns == total_ns // iters).

``compare`` gates the groups in GATED_GROUPS on a per-group geometric
mean of ``mean_ns``. CURRENT may be several runs of the same suite;
they are reduced bench-wise to their minimum first, because scheduler
noise only ever inflates a measurement. The gate fails when a gated
group's reduced geomean exceeds THRESHOLD x the baseline's geomean.
Per-bench ratios are printed for diagnosis either way.

``scaling`` reads the ``throughput/check_batch`` benches of FILE and
fails unless the jobs=4 batch is at least MIN_SPEEDUP (default
SCALING_MIN_SPEEDUP) times faster than the jobs=1 batch. ci.sh runs
this only when the host has >= 4 cores; a single-core host cannot
express the speed-up and the stage is skipped with a notice instead.
"""

import json
import math
import sys

GATED_GROUPS = ("model_lookup", "congruence_scaling", "throughput")
THRESHOLD = 1.25
SCALING_MIN_SPEEDUP = 1.5

ENTRY_FIELDS = {"group", "id", "param", "iters", "total_ns", "mean_ns"}


def fail(msg):
    print(f"bench_gate: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, ValueError) as e:
        fail(f"{path}: cannot read as JSON: {e}")


def validate(path):
    doc = load(path)
    if not isinstance(doc, dict):
        fail(f"{path}: top level must be an object")
    if doc.get("schema") != "fg-bench/1":
        fail(f"{path}: schema is {doc.get('schema')!r}, want 'fg-bench/1'")
    if not isinstance(doc.get("harness"), str) or not doc["harness"]:
        fail(f"{path}: harness must be a non-empty string")
    benches = doc.get("benches")
    if not isinstance(benches, list) or not benches:
        fail(f"{path}: benches must be a non-empty array")
    seen = set()
    for e in benches:
        if not isinstance(e, dict) or set(e) != ENTRY_FIELDS:
            fail(f"{path}: bench entry fields {sorted(e)} != {sorted(ENTRY_FIELDS)}")
        for k in ("group", "id", "param"):
            if not isinstance(e[k], str):
                fail(f"{path}: {k} must be a string: {e}")
        for k in ("iters", "total_ns", "mean_ns"):
            if not isinstance(e[k], int) or e[k] < 0:
                fail(f"{path}: {k} must be a non-negative integer: {e}")
        if e["iters"] < 1 or e["total_ns"] < 1:
            fail(f"{path}: empty measurement: {e}")
        if e["mean_ns"] != e["total_ns"] // e["iters"]:
            fail(f"{path}: mean_ns inconsistent with total_ns/iters: {e}")
        key = (e["group"], e["id"], e["param"])
        if key in seen:
            fail(f"{path}: duplicate bench {key}")
        seen.add(key)
    print(f"bench_gate: {path}: schema ok ({len(benches)} benches)")
    return doc


def means_by_key(doc):
    return {
        (e["group"], e["id"], e["param"]): e["mean_ns"]
        for e in doc["benches"]
    }


def compare(baseline_path, current_paths):
    base = means_by_key(validate(baseline_path))
    runs = [means_by_key(validate(p)) for p in current_paths]
    # Bench-wise minimum across runs: noise only inflates.
    current = {}
    for key in runs[0]:
        vals = [r[key] for r in runs if key in r]
        current[key] = min(vals)

    bad = []
    for group in GATED_GROUPS:
        keys = sorted(
            k for k in base
            if k[0] == group and "@" not in k[1] and k in current
        )
        if not keys:
            fail(f"{baseline_path}: no '{group}' benches to gate")
        for k in keys:
            ratio = current[k] / base[k]
            print(
                f"bench_gate:   {k[0]}/{k[1]}"
                f"{('/' + k[2]) if k[2] else '':<6} "
                f"{base[k]:>12} -> {current[k]:>12} ns/iter  ({ratio:5.2f}x)"
            )
        geo = lambda m: math.exp(sum(math.log(m[k]) for k in keys) / len(keys))
        ratio = geo(current) / geo(base)
        verdict = "ok" if ratio <= THRESHOLD else "REGRESSION"
        print(f"bench_gate: group {group}: geomean ratio {ratio:.2f}x ({verdict})")
        if ratio > THRESHOLD:
            bad.append((group, ratio))
    if bad:
        fail(
            "; ".join(
                f"group {g} regressed {r:.2f}x (> {THRESHOLD}x allowed)"
                for g, r in bad
            )
        )
    print("bench_gate: no regression beyond threshold")


def scaling(path, min_speedup):
    means = means_by_key(validate(path))
    by_jobs = {
        k[2]: v for k, v in means.items()
        if k[0] == "throughput" and k[1] == "check_batch"
    }
    if "1" not in by_jobs or "4" not in by_jobs:
        fail(f"{path}: no throughput/check_batch benches for jobs=1 and jobs=4")
    for jobs in sorted(by_jobs, key=int):
        speedup = by_jobs["1"] / by_jobs[jobs]
        print(
            f"bench_gate:   throughput/check_batch/{jobs} "
            f"{by_jobs[jobs]:>12} ns/batch  ({speedup:5.2f}x vs jobs=1)"
        )
    speedup = by_jobs["1"] / by_jobs["4"]
    if speedup < min_speedup:
        fail(
            f"jobs=4 speed-up {speedup:.2f}x is below the "
            f"{min_speedup}x floor"
        )
    print(f"bench_gate: scaling ok: jobs=4 is {speedup:.2f}x jobs=1")


def main():
    if len(sys.argv) >= 3 and sys.argv[1] == "validate":
        for path in sys.argv[2:]:
            validate(path)
    elif len(sys.argv) >= 4 and sys.argv[1] == "compare":
        compare(sys.argv[2], sys.argv[3:])
    elif len(sys.argv) in (3, 4) and sys.argv[1] == "scaling":
        floor = float(sys.argv[3]) if len(sys.argv) == 4 else SCALING_MIN_SPEEDUP
        scaling(sys.argv[2], floor)
    else:
        print(__doc__, file=sys.stderr)
        sys.exit(2)


if __name__ == "__main__":
    main()
