//! Workspace-level reproduction tests: every figure and worked example of
//! the paper runs end-to-end across all three crates — F_G front end →
//! dictionary-passing translation → System F typechecker and evaluator —
//! and produces the value the paper's prose implies.
//!
//! Experiment ids refer to DESIGN.md §3 and EXPERIMENTS.md.

use fg_lang::fg::{self, corpus};
use fg_lang::system_f;

/// F1, F5, F6, §3.1, §5, §5.2: each corpus program typechecks, its
/// translation typechecks in System F (Theorems 1/2), and both execution
/// paths produce the paper's expected value.
#[test]
fn every_corpus_program_reproduces_the_paper() {
    for p in corpus::ALL {
        let expr = fg::parser::parse_expr(p.source)
            .unwrap_or_else(|e| panic!("{}: parse: {e}", p.id));
        let compiled = fg::check_program(&expr)
            .unwrap_or_else(|e| panic!("{}: typecheck: {e}", p.id));
        system_f::typecheck(&compiled.term)
            .unwrap_or_else(|e| panic!("{}: translation ill-typed: {e}", p.id));
        let v = system_f::eval(&compiled.term)
            .unwrap_or_else(|e| panic!("{}: eval: {e}", p.id));
        assert!(
            p.expected.matches(&v),
            "{} ({}): got {v}, expected {:?}",
            p.id,
            p.title,
            p.expected
        );
        let d = fg::interp::run_direct(&compiled.elaborated)
            .unwrap_or_else(|e| panic!("{}: direct eval: {e}", p.id));
        assert!(d.agrees_with(&v), "{}: direct {d} != translated {v}", p.id);
    }
}

/// F3: Figure 3's higher-order sum really is plain System F — it parses,
/// typechecks, and evaluates to 3 without any F_G machinery.
#[test]
fn figure_3_higher_order_sum_in_system_f() {
    let term = system_f::parse_term(corpus::FIG3_SUM_SYSTEM_F).expect("parse");
    assert_eq!(system_f::typecheck(&term), Ok(system_f::Ty::Int));
    assert_eq!(system_f::eval(&term).unwrap(), system_f::Value::Int(3));
}

/// F7: the translation of Figure 6's model declarations produces the
/// dictionary shapes drawn in Figure 7 — `Semigroup = (iadd)` and
/// `Monoid = (Semigroup-dict, 0)` — bound by `let` and consumed by `nth`
/// projections.
#[test]
fn figure_7_dictionary_representation() {
    let src = "
        concept Semigroup<t> { binary_op : fn(t, t) -> t; } in
        concept Monoid<t> { refines Semigroup<t>; identity_elt : t; } in
        model Semigroup<int> { binary_op = iadd; } in
        model Monoid<int> { identity_elt = 0; } in
        Monoid<int>.binary_op(40, 2)";
    let compiled = fg::compile(src).expect("compile");
    let printed = compiled.term.to_string();

    // The Semigroup dictionary is a 1-tuple holding iadd (via a member let).
    assert!(printed.contains("binary_op_"), "missing member let: {printed}");
    assert!(printed.contains("tuple(binary_op_"), "Semigroup dict shape: {printed}");
    // The Monoid dictionary embeds the Semigroup dictionary first.
    assert!(printed.contains("tuple(Semigroup_"), "Monoid dict shape: {printed}");
    // Member access through refinement is a nested nth path: dict.0.0.
    assert!(printed.contains(".0.0"), "refinement projection path: {printed}");

    assert_eq!(
        system_f::eval(&compiled.term).unwrap(),
        system_f::Value::Int(42)
    );
}

/// §4's translation of `accumulate`: the where clause becomes a dictionary
/// parameter — `biglam t. lam Monoid_NN: <dict type>. body` — and the
/// instantiation applies the dictionary.
#[test]
fn where_clause_translates_to_dictionary_parameter() {
    let p = corpus::FIG5_ACCUMULATE;
    let compiled = fg::compile(p.source).expect("compile");
    let printed = compiled.term.to_string();
    assert!(
        printed.contains("biglam t. lam Monoid_"),
        "expected dictionary-lambda translation: {printed}"
    );
    // The instantiation `accumulate[int](ls)` becomes `accumulate[int](dict)(ls)`.
    assert!(
        printed.contains("accumulate[int](Monoid_"),
        "expected dictionary application at the call site: {printed}"
    );
}

/// §5.2's merge translation: one type parameter per associated type, a
/// single representative in dictionary types.
#[test]
fn merge_translation_collapses_element_types() {
    let p = corpus::SEC5_MERGE;
    let compiled = fg::compile(p.source).expect("compile");
    let printed = compiled.term.to_string();
    // Two elt binders (one per Iterator constraint)…
    let binders = printed
        .split("biglam I1, I2, Out, ")
        .nth(1)
        .expect("merge biglam present");
    let binder_list: String = binders.chars().take_while(|c| *c != '.').collect();
    assert_eq!(
        binder_list.matches("elt_").count(),
        2,
        "expected two lifted elt parameters in {binder_list:?}"
    );
    // …but only the representative appears in the dictionary types: the
    // second elt binder occurs exactly once (its binding occurrence).
    let second_elt = binder_list.split(", ").last().unwrap().trim().to_owned();
    assert_eq!(
        printed.matches(&second_elt).count(),
        1,
        "non-representative {second_elt} should only occur at its binder"
    );
}

/// The congruence-closure substrate is what decides the same-type
/// constraints above; sanity-check it directly on the paper's scenario.
#[test]
fn congruence_decides_iterator_element_equality() {
    use fg_lang::congruence::{Congruence, Op};

    let mut cc = Congruence::new();
    let elt = Op(0); // Iterator<->.elt as an uninterpreted operator
    let i1 = cc.constant(Op(1));
    let i2 = cc.constant(Op(2));
    let e1 = cc.term(elt, &[i1]);
    let e2 = cc.term(elt, &[i2]);
    assert!(!cc.eq(e1, e2), "opaque associated types start distinct");
    cc.merge(e1, e2); // the same-type constraint
    assert!(cc.eq(e1, e2));
    // Congruence: list(e1) = list(e2) follows.
    let list = Op(3);
    let l1 = cc.term(list, &[e1]);
    let l2 = cc.term(list, &[e2]);
    assert!(cc.eq(l1, l2));
}

/// The prelude (a small STL) typechecks, translates, and runs — the
/// "generic programming in the large" claim on a library-sized program.
#[test]
fn stl_prelude_end_to_end() {
    let src = fg::stdlib::with_prelude(
        "iadd(accumulate[int](range(1, 11)),
              count_if[list int](reverse[int](range(0, 100)), lam x: int. ilt(x, 5)))",
    );
    let compiled = fg::compile(&src).expect("compile");
    system_f::typecheck(&compiled.term).expect("translation well-typed");
    assert_eq!(
        system_f::eval(&compiled.term).unwrap(),
        system_f::Value::Int(60)
    );
}
